//! Abstract syntax tree for the VHDL1 fragment of Figure 1 of the paper.
//!
//! VHDL1 programs consist of entities and architectures.  Architectures are
//! families of concurrent statements (processes, blocks and concurrent signal
//! assignments); processes have sequential statement bodies operating on local
//! variables and signals.
//!
//! Elementary statements carry a [`Label`]; labels are assigned by the
//! elaboration pass ([`mod@crate::elaborate`]) and are unique across the whole
//! program, as required by the analyses of Sections 4 and 5.

use crate::token::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an entity, architecture, process, block, variable or signal.
pub type Ident = String;

/// Program-point label attached to elementary blocks (Section 4, "Common
/// analysis domains").  Label `0` means "not yet assigned".
pub type Label = u32;

/// A complete VHDL1 program: a sequence of design units.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The design units in source order.
    pub units: Vec<DesignUnit>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entity with the given name, if any.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.units.iter().find_map(|u| match u {
            DesignUnit::Entity(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Returns the architecture with the given name, if any.
    pub fn architecture(&self, name: &str) -> Option<&Architecture> {
        self.units.iter().find_map(|u| match u {
            DesignUnit::Architecture(a) if a.name == name => Some(a),
            _ => None,
        })
    }

    /// Returns all architectures in the program.
    pub fn architectures(&self) -> impl Iterator<Item = &Architecture> {
        self.units.iter().filter_map(|u| match u {
            DesignUnit::Architecture(a) => Some(a),
            _ => None,
        })
    }

    /// Returns all entities in the program.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.units.iter().filter_map(|u| match u {
            DesignUnit::Entity(e) => Some(e),
            _ => None,
        })
    }
}

/// Either an entity declaration or an architecture body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignUnit {
    /// `entity i_e is port(...); end i_e;`
    Entity(Entity),
    /// `architecture i_a of i_e is ... begin css; end i_a;`
    Architecture(Architecture),
}

/// An entity declaration: the interface of a design to its environment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Entity identifier `i_e`.
    pub name: Ident,
    /// The ports connecting the design to the environment.
    pub ports: Vec<Port>,
}

/// A single port of an entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// The signal name used to refer to the port.
    pub name: Ident,
    /// Whether the environment drives (`in`) or observes (`out`) the port.
    pub mode: PortMode,
    /// The carried type.
    pub ty: Type,
    /// Source position of the port name (diagnostics only, invisible to `==`).
    pub span: Span,
}

/// Direction of a port as seen from the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortMode {
    /// The environment may alter the signal's value.
    In,
    /// The environment may read the signal's value.
    Out,
}

impl fmt::Display for PortMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortMode::In => write!(f, "in"),
            PortMode::Out => write!(f, "out"),
        }
    }
}

/// Types of VHDL1 values: single `std_logic` wires or vectors of them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// A single standard-logic value.
    StdLogic,
    /// `std_logic_vector(left downto right)` or `std_logic_vector(left to right)`.
    StdLogicVector {
        /// Index ordering of the declaration.
        dir: RangeDir,
        /// The left bound as written.
        left: i64,
        /// The right bound as written.
        right: i64,
    },
}

impl Type {
    /// Convenience constructor for `std_logic_vector(hi downto lo)`.
    pub fn vector_downto(hi: i64, lo: i64) -> Self {
        Type::StdLogicVector {
            dir: RangeDir::Downto,
            left: hi,
            right: lo,
        }
    }

    /// Convenience constructor for `std_logic_vector(lo to hi)`.
    pub fn vector_to(lo: i64, hi: i64) -> Self {
        Type::StdLogicVector {
            dir: RangeDir::To,
            left: lo,
            right: hi,
        }
    }

    /// Number of `std_logic` elements carried by this type.
    pub fn width(&self) -> usize {
        match self {
            Type::StdLogic => 1,
            Type::StdLogicVector { left, right, .. } => ((left - right).abs() + 1) as usize,
        }
    }

    /// Smallest index of the vector range (equals `0` for `std_logic`).
    pub fn low_index(&self) -> i64 {
        match self {
            Type::StdLogic => 0,
            Type::StdLogicVector { left, right, .. } => (*left).min(*right),
        }
    }

    /// Largest index of the vector range (equals `0` for `std_logic`).
    pub fn high_index(&self) -> i64 {
        match self {
            Type::StdLogic => 0,
            Type::StdLogicVector { left, right, .. } => (*left).max(*right),
        }
    }

    /// Whether the type is a vector type.
    pub fn is_vector(&self) -> bool {
        matches!(self, Type::StdLogicVector { .. })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::StdLogic => write!(f, "std_logic"),
            Type::StdLogicVector { dir, left, right } => {
                write!(f, "std_logic_vector({left} {dir} {right})")
            }
        }
    }
}

/// Index ordering of a vector range or slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RangeDir {
    /// `z1 downto z2` — indices decrease left to right.
    Downto,
    /// `z1 to z2` — indices increase left to right.
    To,
}

impl fmt::Display for RangeDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeDir::Downto => write!(f, "downto"),
            RangeDir::To => write!(f, "to"),
        }
    }
}

/// A slice `(z1 downto z2)` / `(z1 to z2)` of a vector variable or signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slice {
    /// Index ordering as written.
    pub dir: RangeDir,
    /// Left bound.
    pub left: i64,
    /// Right bound.
    pub right: i64,
}

impl Slice {
    /// Constructs a `downto` slice.
    pub fn downto(left: i64, right: i64) -> Self {
        Slice {
            dir: RangeDir::Downto,
            left,
            right,
        }
    }

    /// Constructs a `to` slice.
    pub fn to(left: i64, right: i64) -> Self {
        Slice {
            dir: RangeDir::To,
            left,
            right,
        }
    }

    /// Number of elements selected by the slice.
    pub fn width(&self) -> usize {
        ((self.left - self.right).abs() + 1) as usize
    }

    /// Smallest selected index.
    pub fn low(&self) -> i64 {
        self.left.min(self.right)
    }

    /// Largest selected index.
    pub fn high(&self) -> i64 {
        self.left.max(self.right)
    }
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.left, self.dir, self.right)
    }
}

/// An architecture body: the behavioural specification of an entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    /// Architecture identifier `i_a`.
    pub name: Ident,
    /// The entity implemented by this architecture.
    pub entity: Ident,
    /// Declarations appearing before `begin` (internal signals).
    pub decls: Vec<Decl>,
    /// The concurrent statements of the architecture.
    pub body: Vec<Concurrent>,
}

/// Concurrent statements (`css` in Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Concurrent {
    /// Concurrent signal assignment `s <= e` (possibly sliced).  Equivalent to
    /// a process sensitive to the free signals of `e` containing the same
    /// assignment (Section 2).
    Assign {
        /// Assigned signal with optional slice.
        target: Target,
        /// Driving expression.
        expr: Expr,
    },
    /// A named process with local declarations and a sequential body.
    Process(Process),
    /// A named block introducing locally scoped signals.
    Block(Block),
}

/// `i_p : process decl; begin ss; end process i_p`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Process identifier `i_p`.
    pub name: Ident,
    /// Local variable and signal declarations.
    pub decls: Vec<Decl>,
    /// The sequential body, repeated indefinitely by the semantics.
    pub body: Stmt,
}

/// `i_b : block decl; begin css; end block i_b`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Block identifier `i_b`.
    pub name: Ident,
    /// Local signal declarations scoped to the block.
    pub decls: Vec<Decl>,
    /// The concurrent statements inside the block.
    pub body: Vec<Concurrent>,
}

/// Declarations of local variables and signals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decl {
    /// `variable x : type := e`.
    Variable {
        /// Declared name.
        name: Ident,
        /// Declared type.
        ty: Type,
        /// Optional initial value.
        init: Option<Expr>,
        /// Source position of the declared name (diagnostics only).
        span: Span,
    },
    /// `signal s : type := e`.
    Signal {
        /// Declared name.
        name: Ident,
        /// Declared type.
        ty: Type,
        /// Optional initial value.
        init: Option<Expr>,
        /// Source position of the declared name (diagnostics only).
        span: Span,
    },
}

impl Decl {
    /// The declared name.
    pub fn name(&self) -> &Ident {
        match self {
            Decl::Variable { name, .. } | Decl::Signal { name, .. } => name,
        }
    }

    /// The declared type.
    pub fn ty(&self) -> &Type {
        match self {
            Decl::Variable { ty, .. } | Decl::Signal { ty, .. } => ty,
        }
    }

    /// The optional initialiser.
    pub fn init(&self) -> Option<&Expr> {
        match self {
            Decl::Variable { init, .. } | Decl::Signal { init, .. } => init.as_ref(),
        }
    }

    /// Source position of the declared name, if the declaration was parsed.
    pub fn span(&self) -> Span {
        match self {
            Decl::Variable { span, .. } | Decl::Signal { span, .. } => *span,
        }
    }

    /// Whether this is a signal declaration.
    pub fn is_signal(&self) -> bool {
        matches!(self, Decl::Signal { .. })
    }
}

/// Assignment target: a name with an optional slice.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Target {
    /// The assigned variable or signal.
    pub name: Ident,
    /// Optional sub-range of a vector target.
    pub slice: Option<Slice>,
    /// Source position of the target name (diagnostics only).
    pub span: Span,
}

impl Target {
    /// A whole-name target.
    pub fn whole(name: impl Into<Ident>) -> Self {
        Target {
            name: name.into(),
            slice: None,
            span: Span::NONE,
        }
    }

    /// A sliced target.
    pub fn sliced(name: impl Into<Ident>, slice: Slice) -> Self {
        Target {
            name: name.into(),
            slice: Some(slice),
            span: Span::NONE,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(sl) = &self.slice {
            write!(f, "{sl}")?;
        }
        Ok(())
    }
}

/// Sequential statements (`ss` in Figure 1).
///
/// Elementary statements carry the [`Label`] of the elementary block they
/// form; `if` and `while` label their condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `null`.
    Null {
        /// Label of the skip block.
        label: Label,
    },
    /// `x := e` (possibly sliced target).
    VarAssign {
        /// Label of the assignment block.
        label: Label,
        /// Assigned variable.
        target: Target,
        /// Right-hand side.
        expr: Expr,
    },
    /// `s <= e` (possibly sliced target); updates the *active* value of `s`.
    SignalAssign {
        /// Label of the assignment block.
        label: Label,
        /// Assigned signal.
        target: Target,
        /// Right-hand side.
        expr: Expr,
    },
    /// `wait on S until e` — the synchronisation point of the process.
    Wait {
        /// Label of the wait block.
        label: Label,
        /// Signals waited on (`S`); defaults to the free signals of `until`.
        on: Vec<Ident>,
        /// Guard on the new present values; defaults to `'1'`.
        until: Expr,
    },
    /// `ss1 ; ss2`.
    Seq(Box<Stmt>, Box<Stmt>),
    /// `if e then ss1 else ss2`.
    If {
        /// Label of the condition block.
        label: Label,
        /// The branch condition.
        cond: Expr,
        /// Taken when the condition evaluates to `'1'`.
        then_branch: Box<Stmt>,
        /// Taken when the condition evaluates to `'0'`.
        else_branch: Box<Stmt>,
    },
    /// `while e do ss`.
    While {
        /// Label of the condition block.
        label: Label,
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Box<Stmt>,
    },
}

impl Stmt {
    /// Sequences a list of statements; an empty list yields `null` (label 0).
    ///
    /// The sequence is built as a balanced tree (rather than a right-nested
    /// chain) so that recursive traversals of very long statement lists —
    /// such as a fully unrolled AES round — stay within stack limits.
    pub fn seq(mut stmts: Vec<Stmt>) -> Stmt {
        match stmts.len() {
            0 => Stmt::Null { label: 0 },
            1 => stmts.pop().expect("length checked"),
            n => {
                let rest = stmts.split_off(n / 2);
                Stmt::Seq(Box::new(Stmt::seq(stmts)), Box::new(Stmt::seq(rest)))
            }
        }
    }

    /// Flattens nested sequencing into a vector of non-`Seq` statements.
    pub fn flatten(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into<'a>(&'a self, out: &mut Vec<&'a Stmt>) {
        match self {
            Stmt::Seq(a, b) => {
                a.flatten_into(out);
                b.flatten_into(out);
            }
            other => out.push(other),
        }
    }

    /// Visits every statement node (including nested branches), depth first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::Seq(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
            Stmt::While { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Counts elementary blocks (assignments, null, wait, if/while conditions).
    pub fn block_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if !matches!(s, Stmt::Seq(..)) {
                n += 1;
            }
        });
        n
    }
}

/// Unary logical operators on `std_logic` and vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// Binary operators: logical (`opbm`), relational and arithmetic (`opa`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Negated exclusive or.
    Xnor,
    /// Equality test, yields `std_logic`.
    Eq,
    /// Inequality test, yields `std_logic`.
    Neq,
    /// Less-than on unsigned vector interpretation.
    Lt,
    /// Less-or-equal on unsigned vector interpretation.
    Le,
    /// Greater-than on unsigned vector interpretation.
    Gt,
    /// Greater-or-equal on unsigned vector interpretation.
    Ge,
    /// Unsigned addition (modular in the vector width).
    Add,
    /// Unsigned subtraction (modular in the vector width).
    Sub,
    /// Vector concatenation.
    Concat,
}

impl BinOp {
    /// Whether the operator is one of the logical gate operators (`opbm`).
    pub fn is_logical(&self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Nand | BinOp::Nor | BinOp::Xnor
        )
    }

    /// Whether the operator is relational (yields a single `std_logic`).
    pub fn is_relational(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is arithmetic on vectors (`opa`).
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Concat)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Nand => "nand",
            BinOp::Nor => "nor",
            BinOp::Xnor => "xnor",
            BinOp::Eq => "=",
            BinOp::Neq => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Concat => "&",
        };
        write!(f, "{s}")
    }
}

/// Expressions (`e` in Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A `std_logic` character literal such as `'1'` or `'Z'`.
    Logic(char),
    /// A vector literal such as `"0101"`.
    Vector(String),
    /// An integer literal; interpreted as an unsigned vector constant whose
    /// width is determined by context (workload-generation convenience).
    Int(i64),
    /// A reference to a variable or signal, possibly sliced.
    Name {
        /// Referenced name.
        name: Ident,
        /// Optional slice.
        slice: Option<Slice>,
        /// Source position of the name (diagnostics only).
        span: Span,
    },
    /// `opum e`.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// `e1 op e2`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// A reference to a whole variable or signal.
    pub fn name(n: impl Into<Ident>) -> Expr {
        Expr::Name {
            name: n.into(),
            slice: None,
            span: Span::NONE,
        }
    }

    /// A reference to a slice of a vector variable or signal.
    pub fn slice(n: impl Into<Ident>, slice: Slice) -> Expr {
        Expr::Name {
            name: n.into(),
            slice: Some(slice),
            span: Span::NONE,
        }
    }

    /// The literal `'1'`.
    pub fn one() -> Expr {
        Expr::Logic('1')
    }

    /// The literal `'0'`.
    pub fn zero() -> Expr {
        Expr::Logic('0')
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds `not e`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(e),
        }
    }

    /// Collects every name referenced by the expression, in first-occurrence
    /// order without duplicates.
    pub fn referenced_names(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Name { name, .. } => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Expr::Unary { expr, .. } => expr.collect_names(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_names(out);
                rhs.collect_names(out);
            }
            Expr::Logic(_) | Expr::Vector(_) | Expr::Int(_) => {}
        }
    }

    /// Whether the expression is the constant `'1'` (the default `until`
    /// condition of a `wait` statement).
    pub fn is_true_literal(&self) -> bool {
        matches!(self, Expr::Logic('1'))
    }

    /// Source position of the first occurrence of `wanted` in the expression,
    /// if the expression was parsed (diagnostics helper for name errors).
    pub fn pos_of_name(&self, wanted: &str) -> Option<crate::token::Pos> {
        match self {
            Expr::Name { name, span, .. } if name == wanted => span.pos(),
            Expr::Unary { expr, .. } => expr.pos_of_name(wanted),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.pos_of_name(wanted).or_else(|| rhs.pos_of_name(wanted))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_width_and_bounds() {
        assert_eq!(Type::StdLogic.width(), 1);
        let v = Type::vector_downto(7, 0);
        assert_eq!(v.width(), 8);
        assert_eq!(v.low_index(), 0);
        assert_eq!(v.high_index(), 7);
        let w = Type::vector_to(1, 4);
        assert_eq!(w.width(), 4);
        assert_eq!(w.low_index(), 1);
        assert_eq!(w.high_index(), 4);
    }

    #[test]
    fn slice_width() {
        assert_eq!(Slice::downto(3, 0).width(), 4);
        assert_eq!(Slice::to(2, 5).width(), 4);
        assert_eq!(Slice::downto(3, 0).low(), 0);
        assert_eq!(Slice::to(2, 5).high(), 5);
    }

    #[test]
    fn stmt_seq_flatten_roundtrip() {
        let s = Stmt::seq(vec![
            Stmt::Null { label: 0 },
            Stmt::VarAssign {
                label: 0,
                target: Target::whole("x"),
                expr: Expr::one(),
            },
            Stmt::Null { label: 0 },
        ]);
        let flat = s.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(s.block_count(), 3);
    }

    #[test]
    fn stmt_seq_empty_is_null() {
        assert_eq!(Stmt::seq(vec![]), Stmt::Null { label: 0 });
    }

    #[test]
    fn expr_referenced_names_dedup() {
        let e = Expr::binary(
            BinOp::And,
            Expr::name("a"),
            Expr::binary(BinOp::Or, Expr::name("b"), Expr::name("a")),
        );
        assert_eq!(e.referenced_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Type::vector_downto(7, 0).to_string(),
            "std_logic_vector(7 downto 0)"
        );
        assert_eq!(
            Target::sliced("x", Slice::to(0, 3)).to_string(),
            "x(0 to 3)"
        );
        assert_eq!(BinOp::Neq.to_string(), "/=");
        assert_eq!(PortMode::Out.to_string(), "out");
    }

    #[test]
    fn block_count_counts_conditions() {
        // if c then x:=1 else null  => cond + assign + null = 3 blocks
        let s = Stmt::If {
            label: 0,
            cond: Expr::name("c"),
            then_branch: Box::new(Stmt::VarAssign {
                label: 0,
                target: Target::whole("x"),
                expr: Expr::one(),
            }),
            else_branch: Box::new(Stmt::Null { label: 0 }),
        };
        assert_eq!(s.block_count(), 3);
    }
}
