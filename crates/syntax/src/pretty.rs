//! Pretty printer emitting parseable VHDL1 concrete syntax.
//!
//! The printer is the inverse of the parser up to label assignment and
//! sensitivity-list desugaring; `parse(pretty(p))` reproduces the original
//! AST for programs built from the constructs it prints (property-tested in
//! the crate's test suite).

use crate::ast::*;
use std::fmt::Write;

/// Pretty-prints a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for unit in &p.units {
        match unit {
            DesignUnit::Entity(e) => pretty_entity(e, &mut out),
            DesignUnit::Architecture(a) => pretty_architecture(a, &mut out),
        }
        out.push('\n');
    }
    out
}

/// Pretty-prints a single entity declaration.
pub fn pretty_entity(e: &Entity, out: &mut String) {
    let _ = writeln!(out, "entity {} is", e.name);
    if !e.ports.is_empty() {
        let _ = writeln!(out, "  port(");
        for (i, port) in e.ports.iter().enumerate() {
            let sep = if i + 1 == e.ports.len() { "" } else { ";" };
            let _ = writeln!(out, "    {} : {} {}{}", port.name, port.mode, port.ty, sep);
        }
        let _ = writeln!(out, "  );");
    }
    let _ = writeln!(out, "end {};", e.name);
}

/// Pretty-prints a single architecture body.
pub fn pretty_architecture(a: &Architecture, out: &mut String) {
    let _ = writeln!(out, "architecture {} of {} is", a.name, a.entity);
    for d in &a.decls {
        let _ = writeln!(out, "  {}", pretty_decl(d));
    }
    let _ = writeln!(out, "begin");
    for cs in &a.body {
        pretty_concurrent(cs, 1, out);
    }
    let _ = writeln!(out, "end {};", a.name);
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn pretty_decl(d: &Decl) -> String {
    let (kw, name, ty, init) = match d {
        Decl::Variable { name, ty, init, .. } => ("variable", name, ty, init),
        Decl::Signal { name, ty, init, .. } => ("signal", name, ty, init),
    };
    match init {
        Some(e) => format!("{kw} {name} : {ty} := {};", pretty_expr(e)),
        None => format!("{kw} {name} : {ty};"),
    }
}

/// Pretty-prints a concurrent statement at the given indentation level.
pub fn pretty_concurrent(cs: &Concurrent, level: usize, out: &mut String) {
    let pad = indent(level);
    match cs {
        Concurrent::Assign { target, expr } => {
            let _ = writeln!(out, "{pad}{target} <= {};", pretty_expr(expr));
        }
        Concurrent::Process(p) => {
            // Unlabelled processes (empty synthetic name) print without the
            // `label :` prefix so the output re-parses.
            if p.name.is_empty() {
                let _ = writeln!(out, "{pad}process");
            } else {
                let _ = writeln!(out, "{pad}{} : process", p.name);
            }
            for d in &p.decls {
                let _ = writeln!(out, "{pad}  {}", pretty_decl(d));
            }
            let _ = writeln!(out, "{pad}begin");
            pretty_stmt(&p.body, level + 1, out);
            if p.name.is_empty() {
                let _ = writeln!(out, "{pad}end process;");
            } else {
                let _ = writeln!(out, "{pad}end process {};", p.name);
            }
        }
        Concurrent::Block(b) => {
            let _ = writeln!(out, "{pad}{} : block", b.name);
            for d in &b.decls {
                let _ = writeln!(out, "{pad}  {}", pretty_decl(d));
            }
            let _ = writeln!(out, "{pad}begin");
            for inner in &b.body {
                pretty_concurrent(inner, level + 1, out);
            }
            let _ = writeln!(out, "{pad}end block {};", b.name);
        }
    }
}

/// Pretty-prints a sequential statement at the given indentation level.
pub fn pretty_stmt(s: &Stmt, level: usize, out: &mut String) {
    let pad = indent(level);
    match s {
        Stmt::Null { .. } => {
            let _ = writeln!(out, "{pad}null;");
        }
        Stmt::VarAssign { target, expr, .. } => {
            let _ = writeln!(out, "{pad}{target} := {};", pretty_expr(expr));
        }
        Stmt::SignalAssign { target, expr, .. } => {
            let _ = writeln!(out, "{pad}{target} <= {};", pretty_expr(expr));
        }
        Stmt::Wait { on, until, .. } => {
            let mut line = format!("{pad}wait");
            if !on.is_empty() {
                let _ = write!(line, " on {}", on.join(", "));
            }
            if !until.is_true_literal() {
                let _ = write!(line, " until {}", pretty_expr(until));
            }
            let _ = writeln!(out, "{line};");
        }
        Stmt::Seq(a, b) => {
            pretty_stmt(a, level, out);
            pretty_stmt(b, level, out);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            // A conditional whose else branch is exactly another conditional
            // prints as an `elsif` ladder.  This is the inverse of the
            // parser's desugaring, and — unlike physically nested
            // `if ... end if;` blocks — keeps S-box style ladders with
            // hundreds of arms within the parser's nesting bound when the
            // output is read back.
            let _ = writeln!(out, "{pad}if {} then", pretty_expr(cond));
            pretty_stmt(then_branch, level + 1, out);
            let mut else_branch = else_branch;
            while let Stmt::If {
                cond,
                then_branch,
                else_branch: nested_else,
                ..
            } = &**else_branch
            {
                let _ = writeln!(out, "{pad}elsif {} then", pretty_expr(cond));
                pretty_stmt(then_branch, level + 1, out);
                else_branch = nested_else;
            }
            if !matches!(**else_branch, Stmt::Null { .. }) {
                let _ = writeln!(out, "{pad}else");
                pretty_stmt(else_branch, level + 1, out);
            }
            let _ = writeln!(out, "{pad}end if;");
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while {} loop", pretty_expr(cond));
            pretty_stmt(body, level + 1, out);
            let _ = writeln!(out, "{pad}end loop;");
        }
    }
}

/// Pretty-prints an expression with the minimum parenthesisation needed to
/// re-parse to the same tree.
pub fn pretty_expr(e: &Expr) -> String {
    pretty_expr_prec(e, 0)
}

/// Precedence levels: 0 logical, 1 relational, 2 adding, 3 unary/primary.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => {
            if op.is_logical() {
                0
            } else if op.is_relational() {
                1
            } else {
                2
            }
        }
        Expr::Unary { .. } => 3,
        _ => 4,
    }
}

fn pretty_expr_prec(e: &Expr, min: u8) -> String {
    let prec = precedence(e);
    let body = match e {
        Expr::Logic(c) => format!("'{c}'"),
        Expr::Vector(s) => format!("\"{s}\""),
        Expr::Int(i) => format!("{i}"),
        Expr::Name { name, slice, .. } => match slice {
            Some(sl) => format!("{name}{sl}"),
            None => name.clone(),
        },
        Expr::Unary { op, expr } => format!("{op} {}", pretty_expr_prec(expr, 3)),
        Expr::Binary { op, lhs, rhs } => {
            // Relational operators are non-associative in the grammar (a
            // relation parses exactly one comparison), so a relational
            // operand on *either* side needs parentheses: `(a = b) = c`
            // must not print as `a = b = c`, which does not re-parse.
            let lhs_min = if op.is_relational() { prec + 1 } else { prec };
            format!(
                "{} {op} {}",
                pretty_expr_prec(lhs, lhs_min),
                pretty_expr_prec(rhs, prec + 1)
            )
        }
    };
    if prec < min {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expression, parse_statements};

    #[test]
    fn expression_roundtrip() {
        for src in [
            "a and b or c",
            "not a",
            "a = '1'",
            "x(7 downto 0) & y",
            "(a or b) and c",
            "a + 1 - b",
            "\"0101\"",
            "a /= b",
        ] {
            let e = parse_expression(src).unwrap();
            let printed = pretty_expr(&e);
            let reparsed = parse_expression(&printed).unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn statement_roundtrip() {
        let src = "x := a; s <= b; if a = '1' then x := '0'; else s <= '1'; end if; \
                   while a = '0' loop x := x + 1; end loop; wait on a, b until a = '1'; null;";
        let s = parse_statements(src).unwrap();
        let mut printed = String::new();
        pretty_stmt(&s, 0, &mut printed);
        let reparsed = parse_statements(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn program_roundtrip() {
        let src = "
            entity e is port(a : in std_logic; b : out std_logic_vector(3 downto 0)); end e;
            architecture rtl of e is
              signal t : std_logic := '0';
            begin
              p : process
                variable v : std_logic_vector(3 downto 0) := \"0000\";
              begin
                v := v + 1;
                b <= v;
                wait on a until a = '1';
              end process p;
              t <= a;
            end rtl;";
        let p = parse(src).unwrap();
        let printed = pretty_program(&p);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn wait_prints_minimal_form() {
        let s = Stmt::Wait {
            label: 0,
            on: vec![],
            until: Expr::one(),
        };
        let mut out = String::new();
        pretty_stmt(&s, 0, &mut out);
        assert_eq!(out.trim(), "wait;");
    }
}
