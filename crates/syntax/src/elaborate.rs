//! Elaboration of a parsed [`Program`] into a [`Design`].
//!
//! Elaboration performs the rewriting described in Sections 2 and 3.3 of the
//! paper:
//!
//! * concurrent signal assignments become processes sensitive to the free
//!   signals of their right-hand side;
//! * blocks are flattened, their locally declared signals added to the scope
//!   of the processes declared inside them;
//! * default `wait` sensitivity lists are pruned to signals;
//! * every elementary block receives a [`Label`] that is unique across the
//!   whole program (the labelling scheme of Section 4).
//!
//! The elaborated [`Design`] is the input to the simulator
//! (`vhdl1-sim`), the Reaching Definitions analyses (`vhdl1-dataflow`)
//! and the Information Flow analysis (`vhdl1-infoflow`).

use crate::ast::*;
use crate::error::SyntaxError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a signal is connected to the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// Declared `in` in the entity: the environment drives it.
    PortIn,
    /// Declared `out` in the entity: the environment observes it.
    PortOut,
    /// Declared inside the architecture, a block or a process.
    Internal,
}

/// A signal of the elaborated design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalInfo {
    /// Signal name.
    pub name: Ident,
    /// Connection to the environment.
    pub kind: SignalKind,
    /// Carried type.
    pub ty: Type,
    /// Optional initial value (internal signals only).
    pub init: Option<Expr>,
}

/// A local variable of a process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableInfo {
    /// Variable name.
    pub name: Ident,
    /// Declared type.
    pub ty: Type,
    /// Optional initial value.
    pub init: Option<Expr>,
}

/// A process of the elaborated design with a labelled body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElabProcess {
    /// Process identifier `i_p` (synthesised for concurrent assignments).
    pub name: Ident,
    /// Index of the process in [`Design::processes`].
    pub index: usize,
    /// Local variables of the process.
    pub variables: Vec<VariableInfo>,
    /// The labelled sequential body.
    pub body: Stmt,
}

/// An elaborated VHDL1 design: one architecture with its entity interface,
/// flattened into a set of processes sharing a global signal namespace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Design {
    /// Architecture name.
    pub name: Ident,
    /// Entity name.
    pub entity: Ident,
    /// All signals of the design (ports first, then internal signals).
    pub signals: Vec<SignalInfo>,
    /// The processes of the design.
    pub processes: Vec<ElabProcess>,
}

impl Design {
    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<&SignalInfo> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Whether `name` denotes a signal of the design.
    pub fn is_signal(&self, name: &str) -> bool {
        self.signal(name).is_some()
    }

    /// Returns the names of all signals declared `in` in the entity.
    pub fn input_signals(&self) -> Vec<Ident> {
        self.signals
            .iter()
            .filter(|s| s.kind == SignalKind::PortIn)
            .map(|s| s.name.clone())
            .collect()
    }

    /// Returns the names of all signals declared `out` in the entity.
    pub fn output_signals(&self) -> Vec<Ident> {
        self.signals
            .iter()
            .filter(|s| s.kind == SignalKind::PortOut)
            .map(|s| s.name.clone())
            .collect()
    }

    /// Looks up a process by name.
    pub fn process(&self, name: &str) -> Option<&ElabProcess> {
        self.processes.iter().find(|p| p.name == name)
    }

    /// Whether `name` denotes a local variable of process `pidx`.
    pub fn is_variable_of(&self, pidx: usize, name: &str) -> bool {
        self.processes
            .get(pidx)
            .map(|p| p.variables.iter().any(|v| v.name == name))
            .unwrap_or(false)
    }

    /// The type of `name` in the scope of process `pidx` (variable or signal).
    pub fn type_of(&self, pidx: usize, name: &str) -> Option<&Type> {
        if let Some(p) = self.processes.get(pidx) {
            if let Some(v) = p.variables.iter().find(|v| v.name == name) {
                return Some(&v.ty);
            }
        }
        self.signal(name).map(|s| &s.ty)
    }

    /// Free variables of `e` in the scope of process `pidx` (the `FV(e)` of
    /// the paper).
    pub fn free_vars(&self, pidx: usize, e: &Expr) -> BTreeSet<Ident> {
        e.referenced_names()
            .into_iter()
            .filter(|n| self.is_variable_of(pidx, n))
            .collect()
    }

    /// Free signals of `e` (the `FS(e)` of the paper).
    pub fn free_signals(&self, e: &Expr) -> BTreeSet<Ident> {
        e.referenced_names()
            .into_iter()
            .filter(|n| self.is_signal(n))
            .collect()
    }

    /// Free variables of the whole body of process `pidx` (`FV(ss_i)`).
    pub fn process_free_vars(&self, pidx: usize) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        if let Some(p) = self.processes.get(pidx) {
            p.body.visit(&mut |s| collect_stmt_names(s, &mut out));
        }
        out.into_iter()
            .filter(|n| self.is_variable_of(pidx, n))
            .collect()
    }

    /// Free signals of the whole body of process `pidx` (`FS(ss_i)`).
    pub fn process_free_signals(&self, pidx: usize) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        if let Some(p) = self.processes.get(pidx) {
            p.body.visit(&mut |s| collect_stmt_names(s, &mut out));
        }
        out.into_iter().filter(|n| self.is_signal(n)).collect()
    }

    /// Labels of the `wait` statements of process `pidx` (the `WS(ss_i)` of
    /// Table 5).
    pub fn wait_labels(&self, pidx: usize) -> Vec<Label> {
        let mut out = Vec::new();
        if let Some(p) = self.processes.get(pidx) {
            p.body.visit(&mut |s| {
                if let Stmt::Wait { label, .. } = s {
                    out.push(*label);
                }
            });
        }
        out
    }

    /// Labels of all `wait` statements of the whole design (the set `WS`).
    pub fn all_wait_labels(&self) -> Vec<Label> {
        (0..self.processes.len())
            .flat_map(|i| self.wait_labels(i))
            .collect()
    }

    /// Maps every label to the index of the process it occurs in.
    pub fn label_owner(&self) -> BTreeMap<Label, usize> {
        let mut out = BTreeMap::new();
        for (i, p) in self.processes.iter().enumerate() {
            p.body.visit(&mut |s| {
                if let Some(l) = stmt_label(s) {
                    out.insert(l, i);
                }
            });
        }
        out
    }

    /// The largest label in the design (labels are `1..=max_label`).
    pub fn max_label(&self) -> Label {
        self.label_owner().keys().copied().max().unwrap_or(0)
    }

    /// All variable and signal names of the design (the resources of the
    /// information-flow graph).
    pub fn resource_names(&self) -> BTreeSet<Ident> {
        let mut out: BTreeSet<Ident> = self.signals.iter().map(|s| s.name.clone()).collect();
        for p in &self.processes {
            out.extend(p.variables.iter().map(|v| v.name.clone()));
        }
        out
    }

    /// The dense `u32` numbering of the design's signals, as assigned by
    /// elaboration: signal `i` is `self.signals[i]` (ports first, then
    /// internal signals in declaration order).
    ///
    /// Dense consumers — notably the `vhdl1-sim` interned simulator core —
    /// index flat per-signal stores and bitsets by these ids instead of
    /// looking names up in ordered maps.
    pub fn signal_numbering(&self) -> SignalNumbering {
        SignalNumbering {
            ids: self
                .signals
                .iter()
                .enumerate()
                .map(|(i, s)| (s.name.clone(), i as u32))
                .collect(),
            count: self.signals.len(),
        }
    }
}

/// Name → dense id translation for the signals of one [`Design`].
///
/// Ids are stable across calls: they are the positions of
/// [`Design::signals`], fixed at elaboration time.
#[derive(Debug, Clone, Default)]
pub struct SignalNumbering {
    ids: std::collections::HashMap<Ident, u32>,
    count: usize,
}

impl SignalNumbering {
    /// The id of `name`, if it denotes a signal of the design.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of signals covered by the numbering.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the design has no signals at all.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The label carried by an elementary statement, if any.
pub fn stmt_label(s: &Stmt) -> Option<Label> {
    match s {
        Stmt::Null { label }
        | Stmt::VarAssign { label, .. }
        | Stmt::SignalAssign { label, .. }
        | Stmt::Wait { label, .. }
        | Stmt::If { label, .. }
        | Stmt::While { label, .. } => Some(*label),
        Stmt::Seq(..) => None,
    }
}

fn collect_stmt_names(s: &Stmt, out: &mut BTreeSet<Ident>) {
    match s {
        Stmt::VarAssign { target, expr, .. } | Stmt::SignalAssign { target, expr, .. } => {
            out.insert(target.name.clone());
            out.extend(expr.referenced_names());
        }
        Stmt::Wait { on, until, .. } => {
            out.extend(on.iter().cloned());
            out.extend(until.referenced_names());
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => {
            out.extend(cond.referenced_names());
        }
        Stmt::Null { .. } | Stmt::Seq(..) => {}
    }
}

/// Options controlling elaboration.
#[derive(Debug, Clone, Default)]
pub struct ElaborateOptions {
    /// Pick this architecture when the program contains several.
    pub architecture: Option<Ident>,
}

/// Elaborates the (single or named) architecture of `program` into a
/// [`Design`].
///
/// # Errors
///
/// Returns a [`SyntaxError`] when the architecture or its entity cannot be
/// found, when names clash or are undeclared, or when assignments target the
/// wrong class of name (`:=` on a signal, `<=` on a variable, any assignment
/// to an `in` port).
pub fn elaborate(program: &Program) -> Result<Design, SyntaxError> {
    elaborate_with(program, &ElaborateOptions::default())
}

/// Elaborates with explicit [`ElaborateOptions`].
///
/// # Errors
///
/// See [`elaborate`].
pub fn elaborate_with(
    program: &Program,
    options: &ElaborateOptions,
) -> Result<Design, SyntaxError> {
    let arch = match &options.architecture {
        Some(name) => program
            .architecture(name)
            .ok_or_else(|| SyntaxError::elaborate(format!("no architecture named `{name}`")))?,
        None => {
            let mut archs = program.architectures();
            let first = archs
                .next()
                .ok_or_else(|| SyntaxError::elaborate("program contains no architecture".into()))?;
            if archs.next().is_some() {
                return Err(SyntaxError::elaborate(
                    "program contains several architectures; select one explicitly".into(),
                ));
            }
            first
        }
    };

    let mut signals: Vec<SignalInfo> = Vec::new();
    let mut seen: BTreeSet<Ident> = BTreeSet::new();

    // Entity ports (if the entity is missing we elaborate a closed design).
    if let Some(entity) = program.entity(&arch.entity) {
        for port in &entity.ports {
            if !seen.insert(port.name.clone()) {
                return Err(SyntaxError::elaborate_at(
                    port.span.pos(),
                    format!("duplicate port `{}`", port.name),
                ));
            }
            signals.push(SignalInfo {
                name: port.name.clone(),
                kind: match port.mode {
                    PortMode::In => SignalKind::PortIn,
                    PortMode::Out => SignalKind::PortOut,
                },
                ty: port.ty.clone(),
                init: None,
            });
        }
    }

    // Architecture-level declarations: internal signals only.
    for decl in &arch.decls {
        match decl {
            Decl::Signal { name, ty, init, .. } => {
                if !seen.insert(name.clone()) {
                    return Err(SyntaxError::elaborate_at(
                        decl.span().pos(),
                        format!("duplicate signal `{name}`"),
                    ));
                }
                signals.push(SignalInfo {
                    name: name.clone(),
                    kind: SignalKind::Internal,
                    ty: ty.clone(),
                    init: init.clone(),
                });
            }
            Decl::Variable { name, .. } => {
                return Err(SyntaxError::elaborate_at(
                    decl.span().pos(),
                    format!("variable `{name}` declared outside a process"),
                ));
            }
        }
    }

    // Flatten the concurrent statements, collecting processes and the signals
    // declared in blocks / processes.
    let mut raw_processes: Vec<(Ident, Vec<VariableInfo>, Stmt)> = Vec::new();
    let mut synthetic = 0usize;
    collect_concurrent(
        &arch.body,
        &mut signals,
        &mut seen,
        &mut raw_processes,
        &mut synthetic,
    )?;

    if raw_processes.is_empty() {
        return Err(SyntaxError::elaborate(format!(
            "architecture `{}` contains no process",
            arch.name
        )));
    }

    // Build the design with unlabelled bodies first so name checks can use it.
    let mut design = Design {
        name: arch.name.clone(),
        entity: arch.entity.clone(),
        signals,
        processes: raw_processes
            .iter()
            .enumerate()
            .map(|(index, (name, variables, body))| ElabProcess {
                name: name.clone(),
                index,
                variables: variables.clone(),
                body: body.clone(),
            })
            .collect(),
    };

    // Prune default `wait on` lists to signals, check names and assignment
    // classes, and assign labels.
    let mut next_label: Label = 1;
    for pidx in 0..design.processes.len() {
        let mut body = design.processes[pidx].body.clone();
        prune_and_check(&design, pidx, &mut body)?;
        assign_labels(&mut body, &mut next_label);
        design.processes[pidx].body = body;
    }

    Ok(design)
}

fn collect_concurrent(
    body: &[Concurrent],
    signals: &mut Vec<SignalInfo>,
    seen: &mut BTreeSet<Ident>,
    processes: &mut Vec<(Ident, Vec<VariableInfo>, Stmt)>,
    synthetic: &mut usize,
) -> Result<(), SyntaxError> {
    for cs in body {
        match cs {
            Concurrent::Assign { target, expr } => {
                // Section 2: a concurrent assignment is a process sensitive to
                // the free signals of the right-hand side.
                *synthetic += 1;
                let name = format!("casg_{}_{}", target.name, synthetic);
                let wait_on = expr.referenced_names();
                let body = Stmt::Seq(
                    Box::new(Stmt::SignalAssign {
                        label: 0,
                        target: target.clone(),
                        expr: expr.clone(),
                    }),
                    Box::new(Stmt::Wait {
                        label: 0,
                        on: wait_on,
                        until: Expr::one(),
                    }),
                );
                processes.push((name, Vec::new(), body));
            }
            Concurrent::Process(p) => {
                let mut variables = Vec::new();
                for decl in &p.decls {
                    match decl {
                        Decl::Variable { name, ty, init, .. } => variables.push(VariableInfo {
                            name: name.clone(),
                            ty: ty.clone(),
                            init: init.clone(),
                        }),
                        Decl::Signal { name, ty, init, .. } => {
                            if !seen.insert(name.clone()) {
                                return Err(SyntaxError::elaborate_at(
                                    decl.span().pos(),
                                    format!("duplicate signal `{name}`"),
                                ));
                            }
                            signals.push(SignalInfo {
                                name: name.clone(),
                                kind: SignalKind::Internal,
                                ty: ty.clone(),
                                init: init.clone(),
                            });
                        }
                    }
                }
                let name = if p.name.is_empty() {
                    *synthetic += 1;
                    format!("process_{synthetic}")
                } else {
                    p.name.clone()
                };
                processes.push((name, variables, p.body.clone()));
            }
            Concurrent::Block(b) => {
                for decl in &b.decls {
                    match decl {
                        Decl::Signal { name, ty, init, .. } => {
                            if !seen.insert(name.clone()) {
                                return Err(SyntaxError::elaborate_at(
                                    decl.span().pos(),
                                    format!("duplicate signal `{name}`"),
                                ));
                            }
                            signals.push(SignalInfo {
                                name: name.clone(),
                                kind: SignalKind::Internal,
                                ty: ty.clone(),
                                init: init.clone(),
                            });
                        }
                        Decl::Variable { name, .. } => {
                            return Err(SyntaxError::elaborate_at(
                                decl.span().pos(),
                                format!("variable `{name}` declared in block `{}`", b.name),
                            ));
                        }
                    }
                }
                collect_concurrent(&b.body, signals, seen, processes, synthetic)?;
            }
        }
    }
    Ok(())
}

fn prune_and_check(design: &Design, pidx: usize, stmt: &mut Stmt) -> Result<(), SyntaxError> {
    match stmt {
        Stmt::Seq(a, b) => {
            prune_and_check(design, pidx, a)?;
            prune_and_check(design, pidx, b)?;
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            check_expr(design, pidx, cond)?;
            prune_and_check(design, pidx, then_branch)?;
            prune_and_check(design, pidx, else_branch)?;
        }
        Stmt::While { cond, body, .. } => {
            check_expr(design, pidx, cond)?;
            prune_and_check(design, pidx, body)?;
        }
        Stmt::Wait { on, until, .. } => {
            check_expr(design, pidx, until)?;
            // Default sensitivity lists collected by the parser may mention
            // variables; keep signals only (FS of the condition).
            on.retain(|n| design.is_signal(n));
            for n in on.iter() {
                if !design.is_signal(n) {
                    return Err(SyntaxError::elaborate(format!(
                        "`wait on {n}` in process `{}` does not name a signal",
                        design.processes[pidx].name
                    )));
                }
            }
        }
        Stmt::VarAssign { target, expr, .. } => {
            check_expr(design, pidx, expr)?;
            if !design.is_variable_of(pidx, &target.name) {
                return Err(SyntaxError::elaborate_at(
                    target.span.pos(),
                    format!(
                        "`:=` target `{}` is not a variable of process `{}`",
                        target.name, design.processes[pidx].name
                    ),
                ));
            }
        }
        Stmt::SignalAssign { target, expr, .. } => {
            check_expr(design, pidx, expr)?;
            match design.signal(&target.name) {
                None => {
                    return Err(SyntaxError::elaborate_at(
                        target.span.pos(),
                        format!(
                            "`<=` target `{}` is not a signal (process `{}`)",
                            target.name, design.processes[pidx].name
                        ),
                    ))
                }
                Some(info) if info.kind == SignalKind::PortIn => {
                    return Err(SyntaxError::elaborate_at(
                        target.span.pos(),
                        format!(
                            "signal `{}` is an `in` port and cannot be driven",
                            target.name
                        ),
                    ))
                }
                Some(_) => {}
            }
        }
        Stmt::Null { .. } => {}
    }
    Ok(())
}

fn check_expr(design: &Design, pidx: usize, e: &Expr) -> Result<(), SyntaxError> {
    for n in e.referenced_names() {
        if !design.is_signal(&n) && !design.is_variable_of(pidx, &n) {
            return Err(SyntaxError::elaborate_at(
                e.pos_of_name(&n),
                format!(
                    "name `{n}` is not declared in the scope of process `{}`",
                    design.processes[pidx].name
                ),
            ));
        }
    }
    Ok(())
}

/// Assigns consecutive labels to elementary blocks in textual order.
pub fn assign_labels(stmt: &mut Stmt, next: &mut Label) {
    match stmt {
        Stmt::Null { label }
        | Stmt::VarAssign { label, .. }
        | Stmt::SignalAssign { label, .. }
        | Stmt::Wait { label, .. } => {
            *label = *next;
            *next += 1;
        }
        Stmt::Seq(a, b) => {
            assign_labels(a, next);
            assign_labels(b, next);
        }
        Stmt::If {
            label,
            then_branch,
            else_branch,
            ..
        } => {
            *label = *next;
            *next += 1;
            assign_labels(then_branch, next);
            assign_labels(else_branch, next);
        }
        Stmt::While { label, body, .. } => {
            *label = *next;
            *next += 1;
            assign_labels(body, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SIMPLE: &str = "
        entity e is port(a : in std_logic; b : out std_logic); end e;
        architecture rtl of e is
          signal t : std_logic;
        begin
          p1 : process
            variable v : std_logic;
          begin
            v := a;
            t <= v;
            wait on a;
          end process p1;
          b <= t;
        end rtl;";

    #[test]
    fn elaborates_ports_signals_and_processes() {
        let d = elaborate(&parse(SIMPLE).unwrap()).unwrap();
        assert_eq!(d.signals.len(), 3);
        assert_eq!(d.signal("a").unwrap().kind, SignalKind::PortIn);
        assert_eq!(d.signal("b").unwrap().kind, SignalKind::PortOut);
        assert_eq!(d.signal("t").unwrap().kind, SignalKind::Internal);
        // The concurrent assignment becomes a second process.
        assert_eq!(d.processes.len(), 2);
        assert!(d.processes[1].name.starts_with("casg_b"));
        assert_eq!(d.input_signals(), vec!["a".to_string()]);
        assert_eq!(d.output_signals(), vec!["b".to_string()]);
    }

    #[test]
    fn labels_are_unique_and_dense() {
        let d = elaborate(&parse(SIMPLE).unwrap()).unwrap();
        let owners = d.label_owner();
        let labels: Vec<Label> = owners.keys().copied().collect();
        assert_eq!(labels, (1..=d.max_label()).collect::<Vec<_>>());
        // p1 has 3 elementary blocks, the synthesised process has 2.
        assert_eq!(d.max_label(), 5);
        assert_eq!(owners[&1], 0);
        assert_eq!(owners[&5], 1);
    }

    #[test]
    fn free_vars_and_signals_are_classified() {
        let d = elaborate(&parse(SIMPLE).unwrap()).unwrap();
        let e = crate::parser::parse_expression("v and a and t").unwrap();
        let fv = d.free_vars(0, &e);
        let fs = d.free_signals(&e);
        assert!(fv.contains("v") && fv.len() == 1);
        assert!(fs.contains("a") && fs.contains("t") && fs.len() == 2);
        assert_eq!(d.process_free_vars(0), BTreeSet::from(["v".to_string()]));
        assert!(d.process_free_signals(0).contains("a"));
    }

    #[test]
    fn wait_labels_reported_per_process() {
        let d = elaborate(&parse(SIMPLE).unwrap()).unwrap();
        assert_eq!(d.wait_labels(0), vec![3]);
        assert_eq!(d.wait_labels(1), vec![5]);
        assert_eq!(d.all_wait_labels(), vec![3, 5]);
    }

    #[test]
    fn rejects_assignment_class_confusion() {
        let bad_var = "
            entity e is port(a : in std_logic); end e;
            architecture rtl of e is signal t : std_logic; begin
              p : process begin t := a; wait on a; end process;
            end rtl;";
        assert!(elaborate(&parse(bad_var).unwrap()).is_err());
        let bad_sig = "
            entity e is port(a : in std_logic); end e;
            architecture rtl of e is begin
              p : process variable v : std_logic; begin v <= a; wait on a; end process;
            end rtl;";
        assert!(elaborate(&parse(bad_sig).unwrap()).is_err());
    }

    #[test]
    fn elaboration_errors_carry_source_positions() {
        // Undeclared name: the error points at the offending identifier.
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin b <= ghost; wait on a; end process;
end rtl;";
        let err = elaborate(&parse(src).unwrap()).unwrap_err();
        let pos = err
            .pos()
            .expect("undeclared-name error must carry a position");
        assert_eq!((pos.line, pos.col), (3, 26), "{err}");
        assert!(err.to_string().contains("at 3:26"), "{err}");

        // Duplicate signal: the error points at the re-declaration.
        let src = "entity e is port(t : in std_logic); end e;
architecture rtl of e is
  signal t : std_logic;
begin
  p : process begin null; wait on t; end process;
end rtl;";
        let err = elaborate(&parse(src).unwrap()).unwrap_err();
        let pos = err
            .pos()
            .expect("duplicate-signal error must carry a position");
        assert_eq!((pos.line, pos.col), (3, 10), "{err}");

        // Assignment-class confusion: the error points at the target.
        let src = "entity e is port(a : in std_logic); end e;
architecture rtl of e is signal t : std_logic; begin
  p : process begin
    t := a;
    wait on a;
  end process;
end rtl;";
        let err = elaborate(&parse(src).unwrap()).unwrap_err();
        let pos = err.pos().expect("`:=` class error must carry a position");
        assert_eq!((pos.line, pos.col), (4, 5), "{err}");
    }

    #[test]
    fn programmatic_asts_still_elaborate_without_positions() {
        // ASTs built without spans (corpus generator, workloads) produce
        // position-less elaboration errors, and Display degrades gracefully.
        use crate::ast::{Expr, Target};
        let mut prog = parse(
            "entity e is port(a : in std_logic); end e;
             architecture rtl of e is begin
               p : process begin null; wait on a; end process;
             end rtl;",
        )
        .unwrap();
        // Splice in an unpositioned assignment to an undeclared name.
        if let crate::ast::DesignUnit::Architecture(arch) = &mut prog.units[1] {
            if let crate::ast::Concurrent::Process(p) = &mut arch.body[0] {
                p.body = Stmt::Seq(
                    Box::new(Stmt::SignalAssign {
                        label: 0,
                        target: Target::whole("nowhere"),
                        expr: Expr::one(),
                    }),
                    Box::new(p.body.clone()),
                );
            }
        }
        let err = elaborate(&prog).unwrap_err();
        assert!(err.pos().is_none());
        assert!(err.to_string().starts_with("elaboration error: "));
    }

    #[test]
    fn rejects_driving_an_input_port() {
        let src = "
            entity e is port(a : in std_logic); end e;
            architecture rtl of e is begin
              p : process begin a <= '1'; wait on a; end process;
            end rtl;";
        assert!(elaborate(&parse(src).unwrap()).is_err());
    }

    #[test]
    fn rejects_undeclared_names() {
        let src = "
            entity e is port(a : in std_logic; b : out std_logic); end e;
            architecture rtl of e is begin
              p : process begin b <= ghost; wait on a; end process;
            end rtl;";
        assert!(elaborate(&parse(src).unwrap()).is_err());
    }

    #[test]
    fn block_signals_are_flattened() {
        let src = "
            entity e is port(a : in std_logic; b : out std_logic); end e;
            architecture rtl of e is begin
              blk : block signal t : std_logic; begin
                p : process begin t <= a; wait on a; end process;
                b <= t;
              end block blk;
            end rtl;";
        let d = elaborate(&parse(src).unwrap()).unwrap();
        assert_eq!(d.signal("t").unwrap().kind, SignalKind::Internal);
        assert_eq!(d.processes.len(), 2);
    }

    #[test]
    fn duplicate_signals_rejected() {
        let src = "
            entity e is port(t : in std_logic); end e;
            architecture rtl of e is signal t : std_logic; begin
              p : process begin null; wait on t; end process;
            end rtl;";
        assert!(elaborate(&parse(src).unwrap()).is_err());
    }

    #[test]
    fn default_wait_sensitivity_pruned_to_signals() {
        let src = "
            entity e is port(a : in std_logic); end e;
            architecture rtl of e is begin
              p : process variable v : std_logic; begin
                v := a;
                wait until v = '1' and a = '1';
              end process;
            end rtl;";
        let d = elaborate(&parse(src).unwrap()).unwrap();
        let mut waits = Vec::new();
        d.processes[0].body.visit(&mut |s| {
            if let Stmt::Wait { on, .. } = s {
                waits.push(on.clone());
            }
        });
        assert_eq!(waits, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn resource_names_cover_variables_and_signals() {
        let d = elaborate(&parse(SIMPLE).unwrap()).unwrap();
        let names = d.resource_names();
        for n in ["a", "b", "t", "v"] {
            assert!(names.contains(n), "missing {n}");
        }
    }

    #[test]
    fn selecting_architecture_by_name() {
        let src = "
            entity e is port(a : in std_logic; b : out std_logic); end e;
            architecture one of e is begin p : process begin b <= a; wait on a; end process; end one;
            architecture two of e is begin q : process begin b <= a; wait on a; end process; end two;";
        let prog = parse(src).unwrap();
        assert!(elaborate(&prog).is_err());
        let d = elaborate_with(
            &prog,
            &ElaborateOptions {
                architecture: Some("two".into()),
            },
        )
        .unwrap();
        assert_eq!(d.name, "two");
        assert_eq!(d.processes[0].name, "q");
    }
}
