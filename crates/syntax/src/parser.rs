//! Recursive-descent parser for VHDL1.
//!
//! The parser accepts the concrete syntax of Figure 1 in its conventional
//! VHDL spelling: `if ... then ... else ... end if;`,
//! `while ... loop ... end loop;` (the paper's `while e do ss` form is also
//! accepted), processes with optional sensitivity lists (desugared to a
//! trailing `wait on` statement, following Section 2), and concurrent signal
//! assignments.
//!
//! Labels of elementary blocks are *not* assigned by the parser; they are
//! assigned during elaboration so that they are unique across the whole
//! program (Section 4).

use crate::ast::*;
use crate::error::SyntaxError;
use crate::lexer::lex;
use crate::token::{Keyword, Pos, Span, Token, TokenKind};

/// Parses a complete VHDL1 program (a sequence of entities and architectures).
///
/// # Errors
///
/// Returns a [`SyntaxError`] describing the first lexical or syntactic
/// problem encountered.
///
/// # Examples
///
/// ```
/// let src = "
///   entity e is port(a : in std_logic; b : out std_logic); end e;
///   architecture rtl of e is begin
///     p : process begin b <= a; wait on a; end process p;
///   end rtl;";
/// let program = vhdl1_syntax::parse(src)?;
/// assert_eq!(program.units.len(), 2);
/// # Ok::<(), vhdl1_syntax::SyntaxError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    parse_with_depth(src, DEFAULT_PARSE_DEPTH)
}

/// Default bound on combined expression/statement/block nesting depth.
///
/// The parser is recursive-descent, so unbounded nesting would exhaust the
/// call stack; this bound is generous for real designs (which rarely nest
/// beyond a few dozen levels) while keeping the worst-case stack usage well
/// under common thread stack sizes.  [`parse_with_depth`] accepts a tighter
/// bound for budgeted front ends.
pub const DEFAULT_PARSE_DEPTH: u32 = 256;

/// Bound on the arm count of one `if/elsif/.../end if` ladder.
///
/// Ladders parse iteratively (so flat S-box style chains with hundreds of
/// arms cost no recursion), but they still desugar to nested conditionals
/// that every downstream traversal recurses over — so the arm count gets its
/// own, much more generous, resource bound.
pub const MAX_ELSIF_ARMS: usize = 1024;

/// [`parse`] with an explicit nesting-depth bound (capped at
/// [`DEFAULT_PARSE_DEPTH`] — deeper inputs would risk exhausting the call
/// stack regardless of the caller's wishes).
///
/// # Errors
///
/// Returns a [`SyntaxError`] for malformed input, or a resource-limit error
/// (see [`SyntaxError::is_resource_limit`]) when nesting exceeds
/// `max_depth`.
pub fn parse_with_depth(src: &str, max_depth: u32) -> Result<Program, SyntaxError> {
    let tokens = lex(src)?;
    Parser::with_depth(tokens, max_depth).program()
}

/// Parses a single sequential statement body (used by tests and workload
/// generators that construct processes directly).
///
/// # Errors
///
/// Returns a [`SyntaxError`] if the text is not a valid statement sequence.
pub fn parse_statements(src: &str) -> Result<Stmt, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let stmt = p.statement_sequence()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns a [`SyntaxError`] if the text is not a valid expression.
pub fn parse_expression(src: &str) -> Result<Expr, SyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expression()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser<'a> {
    tokens: Vec<Token<'a>>,
    idx: usize,
    /// Current combined nesting depth (expressions, statements, blocks).
    depth: u32,
    /// Bound on `depth`; exceeding it yields a resource-limit error instead
    /// of a call-stack overflow.
    max_depth: u32,
}

impl<'a> Parser<'a> {
    fn new(tokens: Vec<Token<'a>>) -> Self {
        Parser::with_depth(tokens, DEFAULT_PARSE_DEPTH)
    }

    fn with_depth(tokens: Vec<Token<'a>>, max_depth: u32) -> Self {
        Parser {
            tokens,
            idx: 0,
            depth: 0,
            max_depth: max_depth.min(DEFAULT_PARSE_DEPTH),
        }
    }

    /// Enters one nesting level of a recursive production, failing with a
    /// resource-limit error once the depth bound is exceeded.  Every
    /// `descend` is paired with an `ascend` on the (successful or failing)
    /// way out, so the counter tracks the live recursion depth.
    fn descend(&mut self, what: &'static str) -> Result<(), SyntaxError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(SyntaxError::resource(
                crate::error::SyntaxErrorKind::Parse,
                Some(self.pos()),
                format!("{what} too deeply nested (depth limit {})", self.max_depth),
            ));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind<'a> {
        &self.tokens[self.idx].kind
    }

    fn peek_n(&self, n: usize) -> &TokenKind<'a> {
        let i = (self.idx + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> TokenKind<'a> {
        let k = self.tokens[self.idx].kind.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        k
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), SyntaxError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind<'_>) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind<'_>) -> Result<(), SyntaxError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> SyntaxError {
        SyntaxError::parse(self.pos(), message)
    }

    fn ident(&mut self) -> Result<Ident, SyntaxError> {
        if matches!(self.peek(), TokenKind::Ident(_)) {
            match self.bump() {
                TokenKind::Ident(s) => Ok(s.into_owned()),
                _ => unreachable!("peeked an identifier"),
            }
        } else {
            Err(self.err(format!("expected identifier, found {}", self.peek())))
        }
    }

    /// An identifier together with the span of its first character, for AST
    /// nodes that carry positions into elaboration diagnostics.
    fn spanned_ident(&mut self) -> Result<(Ident, Span), SyntaxError> {
        let span = Span::at(self.pos());
        Ok((self.ident()?, span))
    }

    fn int(&mut self) -> Result<i64, SyntaxError> {
        match self.peek() {
            TokenKind::IntLit(n) => {
                let n = *n;
                self.bump();
                Ok(n)
            }
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    // ---- programs -------------------------------------------------------

    fn program(&mut self) -> Result<Program, SyntaxError> {
        let mut units = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            if self.at_kw(Keyword::Entity) {
                units.push(DesignUnit::Entity(self.entity()?));
            } else if self.at_kw(Keyword::Architecture) {
                units.push(DesignUnit::Architecture(self.architecture()?));
            } else {
                return Err(self.err(format!(
                    "expected `entity` or `architecture`, found {}",
                    self.peek()
                )));
            }
        }
        Ok(Program { units })
    }

    fn entity(&mut self) -> Result<Entity, SyntaxError> {
        self.expect_kw(Keyword::Entity)?;
        let name = self.ident()?;
        self.expect_kw(Keyword::Is)?;
        let mut ports = Vec::new();
        if self.eat_kw(Keyword::Port) {
            self.expect(TokenKind::LParen)?;
            loop {
                ports.extend(self.port_group()?);
                if self.eat(&TokenKind::Semicolon) {
                    if matches!(self.peek(), TokenKind::RParen) {
                        break;
                    }
                    continue;
                }
                break;
            }
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semicolon)?;
        }
        self.expect_kw(Keyword::End)?;
        if let TokenKind::Ident(_) = self.peek() {
            let closing = self.ident()?;
            if closing != name {
                return Err(self.err(format!(
                    "entity `{name}` closed with mismatched name `{closing}`"
                )));
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(Entity { name, ports })
    }

    fn port_group(&mut self) -> Result<Vec<Port>, SyntaxError> {
        let mut names = vec![self.spanned_ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.spanned_ident()?);
        }
        self.expect(TokenKind::Colon)?;
        let mode = if self.eat_kw(Keyword::In) {
            PortMode::In
        } else if self.eat_kw(Keyword::Out) {
            PortMode::Out
        } else {
            return Err(self.err(format!("expected `in` or `out`, found {}", self.peek())));
        };
        let ty = self.type_mark()?;
        Ok(names
            .into_iter()
            .map(|(name, span)| Port {
                name,
                mode,
                ty: ty.clone(),
                span,
            })
            .collect())
    }

    fn type_mark(&mut self) -> Result<Type, SyntaxError> {
        if self.eat_kw(Keyword::StdLogic) {
            return Ok(Type::StdLogic);
        }
        if self.eat_kw(Keyword::StdLogicVector) {
            self.expect(TokenKind::LParen)?;
            let left = self.int()?;
            let dir = self.range_dir()?;
            let right = self.int()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Type::StdLogicVector { dir, left, right });
        }
        Err(self.err(format!(
            "expected `std_logic` or `std_logic_vector`, found {}",
            self.peek()
        )))
    }

    fn range_dir(&mut self) -> Result<RangeDir, SyntaxError> {
        if self.eat_kw(Keyword::Downto) {
            Ok(RangeDir::Downto)
        } else if self.eat_kw(Keyword::To) {
            Ok(RangeDir::To)
        } else {
            Err(self.err(format!("expected `downto` or `to`, found {}", self.peek())))
        }
    }

    fn architecture(&mut self) -> Result<Architecture, SyntaxError> {
        self.expect_kw(Keyword::Architecture)?;
        let name = self.ident()?;
        self.expect_kw(Keyword::Of)?;
        let entity = self.ident()?;
        self.expect_kw(Keyword::Is)?;
        let decls = self.declarations()?;
        self.expect_kw(Keyword::Begin)?;
        let mut body = Vec::new();
        while !self.at_kw(Keyword::End) {
            body.push(self.concurrent()?);
        }
        self.expect_kw(Keyword::End)?;
        if let TokenKind::Ident(_) = self.peek() {
            let closing = self.ident()?;
            if closing != name {
                return Err(self.err(format!(
                    "architecture `{name}` closed with mismatched name `{closing}`"
                )));
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(Architecture {
            name,
            entity,
            decls,
            body,
        })
    }

    fn declarations(&mut self) -> Result<Vec<Decl>, SyntaxError> {
        let mut decls = Vec::new();
        loop {
            let is_var = self.at_kw(Keyword::Variable);
            let is_sig = self.at_kw(Keyword::Signal);
            if !is_var && !is_sig {
                return Ok(decls);
            }
            self.bump();
            let mut names = vec![self.spanned_ident()?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.spanned_ident()?);
            }
            self.expect(TokenKind::Colon)?;
            let ty = self.type_mark()?;
            let init = if self.eat(&TokenKind::ColonEq) {
                Some(self.expression()?)
            } else {
                None
            };
            self.expect(TokenKind::Semicolon)?;
            for (name, span) in names {
                decls.push(if is_var {
                    Decl::Variable {
                        name,
                        ty: ty.clone(),
                        init: init.clone(),
                        span,
                    }
                } else {
                    Decl::Signal {
                        name,
                        ty: ty.clone(),
                        init: init.clone(),
                        span,
                    }
                });
            }
        }
    }

    // ---- concurrent statements -------------------------------------------

    fn concurrent(&mut self) -> Result<Concurrent, SyntaxError> {
        // Nested `block`s recurse back into `concurrent`; like statements,
        // they charge two depth units per level (see `statement`).
        self.descend("block")?;
        self.descend("block")?;
        let r = self.concurrent_inner();
        self.ascend();
        self.ascend();
        r
    }

    fn concurrent_inner(&mut self) -> Result<Concurrent, SyntaxError> {
        // Labelled process or block: `ident : process ...` / `ident : block ...`
        if matches!(self.peek(), TokenKind::Ident(_)) && matches!(self.peek_n(1), TokenKind::Colon)
        {
            match self.peek_n(2) {
                TokenKind::Keyword(Keyword::Process) => {
                    return self.process().map(Concurrent::Process)
                }
                TokenKind::Keyword(Keyword::Block) => return self.block().map(Concurrent::Block),
                _ => {}
            }
        }
        // Unlabelled process (rare, give it a synthetic empty name).
        if self.at_kw(Keyword::Process) {
            return self
                .process_with_name(String::new())
                .map(Concurrent::Process);
        }
        // Concurrent signal assignment.
        let target = self.target()?;
        self.expect(TokenKind::LtEq)?;
        let expr = self.expression()?;
        self.expect(TokenKind::Semicolon)?;
        Ok(Concurrent::Assign { target, expr })
    }

    fn process(&mut self) -> Result<Process, SyntaxError> {
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        self.process_with_name(name)
    }

    fn process_with_name(&mut self, name: Ident) -> Result<Process, SyntaxError> {
        self.expect_kw(Keyword::Process)?;
        // Optional sensitivity list: desugared to a trailing `wait on` (Section 2).
        let mut sensitivity = Vec::new();
        if self.eat(&TokenKind::LParen) {
            sensitivity.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                sensitivity.push(self.ident()?);
            }
            self.expect(TokenKind::RParen)?;
        }
        self.eat_kw(Keyword::Is);
        let decls = self.declarations()?;
        self.expect_kw(Keyword::Begin)?;
        let mut body = self.statement_sequence()?;
        self.expect_kw(Keyword::End)?;
        self.expect_kw(Keyword::Process)?;
        if let TokenKind::Ident(_) = self.peek() {
            let closing = self.ident()?;
            if !name.is_empty() && closing != name {
                return Err(self.err(format!(
                    "process `{name}` closed with mismatched name `{closing}`"
                )));
            }
        }
        self.expect(TokenKind::Semicolon)?;
        if !sensitivity.is_empty() {
            body = Stmt::Seq(
                Box::new(body),
                Box::new(Stmt::Wait {
                    label: 0,
                    on: sensitivity,
                    until: Expr::one(),
                }),
            );
        }
        Ok(Process { name, decls, body })
    }

    fn block(&mut self) -> Result<Block, SyntaxError> {
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        self.expect_kw(Keyword::Block)?;
        self.eat_kw(Keyword::Is);
        let decls = self.declarations()?;
        self.expect_kw(Keyword::Begin)?;
        let mut body = Vec::new();
        while !self.at_kw(Keyword::End) {
            body.push(self.concurrent()?);
        }
        self.expect_kw(Keyword::End)?;
        self.expect_kw(Keyword::Block)?;
        if let TokenKind::Ident(_) = self.peek() {
            let closing = self.ident()?;
            if closing != name {
                return Err(self.err(format!(
                    "block `{name}` closed with mismatched name `{closing}`"
                )));
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(Block { name, decls, body })
    }

    // ---- sequential statements ---------------------------------------------

    fn at_statement_terminator(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Eof
                | TokenKind::Keyword(Keyword::End)
                | TokenKind::Keyword(Keyword::Else)
                | TokenKind::Keyword(Keyword::Elsif)
        )
    }

    fn statement_sequence(&mut self) -> Result<Stmt, SyntaxError> {
        let mut stmts = Vec::new();
        while !self.at_statement_terminator() {
            stmts.push(self.statement()?);
        }
        Ok(Stmt::seq(stmts))
    }

    fn statement(&mut self) -> Result<Stmt, SyntaxError> {
        // Statements charge two depth units: one statement nesting level
        // keeps far more parser state on the call stack than one expression
        // level, and the shared bound is sized for the cheaper of the two.
        self.descend("statement")?;
        self.descend("statement")?;
        let r = self.statement_inner();
        self.ascend();
        self.ascend();
        r
    }

    fn statement_inner(&mut self) -> Result<Stmt, SyntaxError> {
        if self.eat_kw(Keyword::Null) {
            self.expect(TokenKind::Semicolon)?;
            return Ok(Stmt::Null { label: 0 });
        }
        if self.eat_kw(Keyword::Wait) {
            return self.wait_statement();
        }
        if self.eat_kw(Keyword::If) {
            return self.if_statement();
        }
        if self.eat_kw(Keyword::While) {
            return self.while_statement();
        }
        // Assignment.
        let target = self.target()?;
        if self.eat(&TokenKind::ColonEq) {
            let expr = self.expression()?;
            self.expect(TokenKind::Semicolon)?;
            return Ok(Stmt::VarAssign {
                label: 0,
                target,
                expr,
            });
        }
        if self.eat(&TokenKind::LtEq) {
            let expr = self.expression()?;
            self.expect(TokenKind::Semicolon)?;
            return Ok(Stmt::SignalAssign {
                label: 0,
                target,
                expr,
            });
        }
        Err(self.err(format!("expected `:=` or `<=`, found {}", self.peek())))
    }

    fn wait_statement(&mut self) -> Result<Stmt, SyntaxError> {
        let mut on = Vec::new();
        let mut explicit_on = false;
        if self.eat_kw(Keyword::On) {
            explicit_on = true;
            on.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                on.push(self.ident()?);
            }
        }
        let until = if self.eat_kw(Keyword::Until) {
            self.expression()?
        } else {
            Expr::one()
        };
        // Default `on` is the set of free signals of the `until` condition
        // (Section 2); names that turn out to be variables are pruned at
        // elaboration time.
        if !explicit_on {
            on = until.referenced_names();
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(Stmt::Wait {
            label: 0,
            on,
            until,
        })
    }

    fn if_statement(&mut self) -> Result<Stmt, SyntaxError> {
        // The whole `if/elsif*/else?` ladder is parsed iteratively: real
        // designs arrive with hundreds of flat `elsif` arms (S-box lookups),
        // which must not consume recursion depth the way genuinely nested
        // `if`s do.  The arm count still gets its own bound so adversarial
        // mega-ladders cannot build an AST too deep to traverse.
        let mut arms = Vec::new();
        loop {
            if arms.len() >= MAX_ELSIF_ARMS {
                return Err(SyntaxError::resource(
                    crate::error::SyntaxErrorKind::Parse,
                    Some(self.pos()),
                    format!("too many elsif arms (limit {MAX_ELSIF_ARMS})"),
                ));
            }
            let cond = self.expression()?;
            self.expect_kw(Keyword::Then)?;
            arms.push((cond, self.statement_sequence()?));
            if !self.eat_kw(Keyword::Elsif) {
                break;
            }
        }
        let else_branch = if self.eat_kw(Keyword::Else) {
            self.statement_sequence()?
        } else {
            Stmt::Null { label: 0 }
        };
        self.expect_kw(Keyword::End)?;
        self.expect_kw(Keyword::If)?;
        self.expect(TokenKind::Semicolon)?;
        Ok(fold_if_ladder(arms, else_branch))
    }

    fn while_statement(&mut self) -> Result<Stmt, SyntaxError> {
        let cond = self.expression()?;
        if self.eat_kw(Keyword::Loop) {
            let body = self.statement_sequence()?;
            self.expect_kw(Keyword::End)?;
            self.expect_kw(Keyword::Loop)?;
            self.expect(TokenKind::Semicolon)?;
            Ok(Stmt::While {
                label: 0,
                cond,
                body: Box::new(body),
            })
        } else if self.eat_kw(Keyword::Do) {
            // Paper-style `while e do ss end while;`
            let body = self.statement_sequence()?;
            self.expect_kw(Keyword::End)?;
            self.expect_kw(Keyword::While)?;
            self.expect(TokenKind::Semicolon)?;
            Ok(Stmt::While {
                label: 0,
                cond,
                body: Box::new(body),
            })
        } else {
            Err(self.err(format!("expected `loop` or `do`, found {}", self.peek())))
        }
    }

    fn target(&mut self) -> Result<Target, SyntaxError> {
        let (name, span) = self.spanned_ident()?;
        let slice = self.optional_slice()?;
        Ok(Target { name, slice, span })
    }

    fn optional_slice(&mut self) -> Result<Option<Slice>, SyntaxError> {
        if matches!(self.peek(), TokenKind::LParen) {
            // Only a literal integer range is a slice in VHDL1.
            if let (TokenKind::IntLit(_), TokenKind::Keyword(Keyword::Downto | Keyword::To)) =
                (self.peek_n(1), self.peek_n(2))
            {
                self.expect(TokenKind::LParen)?;
                let left = self.int()?;
                let dir = self.range_dir()?;
                let right = self.int()?;
                self.expect(TokenKind::RParen)?;
                return Ok(Some(Slice { dir, left, right }));
            }
            // Single-element index `x(3)` is sugar for `x(3 downto 3)`.
            if let (TokenKind::IntLit(_), TokenKind::RParen) = (self.peek_n(1), self.peek_n(2)) {
                self.expect(TokenKind::LParen)?;
                let i = self.int()?;
                self.expect(TokenKind::RParen)?;
                return Ok(Some(Slice {
                    dir: RangeDir::Downto,
                    left: i,
                    right: i,
                }));
            }
        }
        Ok(None)
    }

    // ---- expressions --------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, SyntaxError> {
        self.descend("expression")?;
        let r = self.logical_expression();
        self.ascend();
        r
    }

    fn logical_expression(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.relation()?;
        loop {
            let op = match self.peek() {
                TokenKind::Keyword(Keyword::And) => BinOp::And,
                TokenKind::Keyword(Keyword::Or) => BinOp::Or,
                TokenKind::Keyword(Keyword::Xor) => BinOp::Xor,
                TokenKind::Keyword(Keyword::Nand) => BinOp::Nand,
                TokenKind::Keyword(Keyword::Nor) => BinOp::Nor,
                TokenKind::Keyword(Keyword::Xnor) => BinOp::Xnor,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relation()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn relation(&mut self) -> Result<Expr, SyntaxError> {
        let lhs = self.adding_expression()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::SlashEq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.adding_expression()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn adding_expression(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Ampersand => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat_kw(Keyword::Not) {
            // `not` chains recurse without passing through `expression`, so
            // they count against the same depth bound.
            self.descend("expression")?;
            let e = self.factor();
            self.ascend();
            return Ok(Expr::not(e?));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek() {
            TokenKind::CharLit(c) => {
                let c = *c;
                self.bump();
                Ok(Expr::Logic(c))
            }
            TokenKind::StringLit(_) => match self.bump() {
                TokenKind::StringLit(s) => Ok(Expr::Vector(s.into_owned())),
                _ => unreachable!("peeked a string literal"),
            },
            TokenKind::IntLit(n) => {
                let n = *n;
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                let (name, span) = self.spanned_ident()?;
                let slice = self.optional_slice()?;
                Ok(Expr::Name { name, slice, span })
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

/// Desugars a parsed `if/elsif*/else?` ladder into nested conditionals,
/// folded from the last arm outwards.  Kept out of [`Parser::if_statement`]
/// so its temporaries don't enlarge the recursive parse frame.
fn fold_if_ladder(arms: Vec<(Expr, Stmt)>, else_branch: Stmt) -> Stmt {
    let mut stmt = else_branch;
    for (cond, then_branch) in arms.into_iter().rev() {
        stmt = Stmt::If {
            label: 0,
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(stmt),
        };
    }
    stmt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entity_with_vector_ports() {
        let p = parse(
            "entity aes is port(key : in std_logic_vector(127 downto 0); \
             ct : out std_logic_vector(127 downto 0)); end aes;",
        )
        .unwrap();
        let e = p.entity("aes").unwrap();
        assert_eq!(e.ports.len(), 2);
        assert_eq!(e.ports[0].mode, PortMode::In);
        assert_eq!(e.ports[0].ty.width(), 128);
    }

    #[test]
    fn parses_port_name_groups() {
        let p = parse("entity e is port(a, b : in std_logic; c : out std_logic); end e;").unwrap();
        assert_eq!(p.entity("e").unwrap().ports.len(), 3);
    }

    #[test]
    fn parses_architecture_with_process() {
        let p = parse(
            "entity e is port(a : in std_logic; b : out std_logic); end e;\n\
             architecture rtl of e is\n\
               signal t : std_logic;\n\
             begin\n\
               p1 : process\n\
                 variable v : std_logic := '0';\n\
               begin\n\
                 v := a and t;\n\
                 b <= v;\n\
                 wait on a until a = '1';\n\
               end process p1;\n\
               t <= a;\n\
             end rtl;",
        )
        .unwrap();
        let a = p.architecture("rtl").unwrap();
        assert_eq!(a.decls.len(), 1);
        assert_eq!(a.body.len(), 2);
        match &a.body[0] {
            Concurrent::Process(proc) => {
                assert_eq!(proc.name, "p1");
                assert_eq!(proc.decls.len(), 1);
                assert_eq!(proc.body.flatten().len(), 3);
            }
            other => panic!("expected process, got {other:?}"),
        }
        assert!(matches!(&a.body[1], Concurrent::Assign { .. }));
    }

    #[test]
    fn sensitivity_list_desugars_to_wait() {
        let p = parse(
            "architecture a of e is begin \
             p : process(clk, rst) begin q <= d; end process; end a;",
        )
        .unwrap();
        let arch = p.architecture("a").unwrap();
        let Concurrent::Process(proc) = &arch.body[0] else {
            panic!()
        };
        let flat = proc.body.flatten();
        assert_eq!(flat.len(), 2);
        match flat[1] {
            Stmt::Wait { on, until, .. } => {
                assert_eq!(on, &vec!["clk".to_string(), "rst".to_string()]);
                assert!(until.is_true_literal());
            }
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_defaults_on_to_free_names() {
        let s = parse_statements("wait until clk = '1';").unwrap();
        match s {
            Stmt::Wait { on, .. } => assert_eq!(on, vec!["clk".to_string()]),
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn bare_wait_has_empty_sensitivity() {
        let s = parse_statements("wait;").unwrap();
        match s {
            Stmt::Wait { on, until, .. } => {
                assert!(on.is_empty());
                assert!(until.is_true_literal());
            }
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_elsif_else_chain() {
        let s = parse_statements(
            "if a = '1' then x := '0'; elsif b = '1' then x := '1'; else null; end if;",
        )
        .unwrap();
        let Stmt::If { else_branch, .. } = s else {
            panic!()
        };
        assert!(matches!(*else_branch, Stmt::If { .. }));
    }

    #[test]
    fn parses_while_loop_and_paper_do_form() {
        let a = parse_statements("while a = '0' loop x := x + 1; end loop;").unwrap();
        assert!(matches!(a, Stmt::While { .. }));
        let b = parse_statements("while a = '0' do x := x + 1; end while;").unwrap();
        assert!(matches!(b, Stmt::While { .. }));
    }

    #[test]
    fn parses_sliced_assignment_and_index_sugar() {
        let s = parse_statements("x(7 downto 4) := y(3 to 0); s(2) <= '1';").unwrap();
        let flat = s.flatten();
        match flat[0] {
            Stmt::VarAssign { target, expr, .. } => {
                assert_eq!(target.slice, Some(Slice::downto(7, 4)));
                assert!(matches!(expr, Expr::Name { slice: Some(_), .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match flat[1] {
            Stmt::SignalAssign { target, .. } => {
                assert_eq!(target.slice, Some(Slice::downto(2, 2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        // `a and b = '1'` parses the relation tighter than the logical op.
        let e = parse_expression("a and b = '1'").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::And,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `not a or b` binds `not` tighter than `or`.
        let e = parse_expression("not a or b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn le_inside_expression_is_relational() {
        let e = parse_expression("a <= b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Le, .. }));
    }

    #[test]
    fn concatenation_and_arithmetic() {
        let e = parse_expression("x(7 downto 4) & (y + 1)").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::Concat,
                ..
            }
        ));
    }

    #[test]
    fn rejects_mismatched_entity_name() {
        assert!(parse("entity e is end f;").is_err());
    }

    #[test]
    fn rejects_garbage_statement() {
        assert!(parse_statements("x + 1;").is_err());
    }

    #[test]
    fn deeply_nested_expression_errors_instead_of_overflowing() {
        // Regression: 100k nesting levels used to overflow the call stack.
        let depth = 100_000;
        let src = format!("{}a{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_expression(&src).expect_err("must not crash");
        assert!(err.is_resource_limit(), "{err}");
        assert!(
            err.to_string().contains("expression too deeply nested"),
            "{err}"
        );
        assert!(err.pos().is_some(), "depth errors carry a position");
        // The same expression embedded in a full program is caught too.
        let prog = format!(
            "architecture a of e is begin p : process begin x := {src}; \
             wait; end process p; end a;"
        );
        let err = parse(&prog).expect_err("must not crash");
        assert!(err.is_resource_limit());
        // `not` chains recurse through `factor` and are bounded as well.
        let nots = format!("{} a", "not ".repeat(100_000));
        assert!(parse_expression(&nots)
            .expect_err("bounded")
            .is_resource_limit());
    }

    #[test]
    fn deeply_nested_statements_error_instead_of_overflowing() {
        let depth = 100_000;
        let src = format!(
            "{}x := '1';{}",
            "if a = '1' then ".repeat(depth),
            " end if;".repeat(depth)
        );
        let err = parse_statements(&src).expect_err("must not crash");
        assert!(err.is_resource_limit(), "{err}");
        assert!(err.to_string().contains("too deeply nested"), "{err}");
    }

    #[test]
    fn parse_with_depth_tightens_but_never_loosens_the_bound() {
        let nested = |d: usize| format!("{}a{}", "(".repeat(d), ")".repeat(d));
        let shallow = format!("architecture a of e is begin q <= {}; end a;", nested(100));
        assert!(parse(&shallow).is_ok());
        let err = parse_with_depth(&shallow, 32).expect_err("tight bound applies");
        assert!(err.is_resource_limit());
        // Requests beyond the default are clamped: still no stack overflow.
        let deep = format!(
            "architecture a of e is begin q <= {}; end a;",
            nested(50_000)
        );
        assert!(parse_with_depth(&deep, u32::MAX)
            .expect_err("clamped")
            .is_resource_limit());
    }

    #[test]
    fn ordinary_nesting_is_unaffected_by_the_depth_guard() {
        let src = format!(
            "architecture a of e is begin q <= {}; end a;",
            "(a xor (b and (c or (not d))))"
        );
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn parses_block_with_local_signals() {
        let p = parse(
            "architecture a of e is begin \
             b1 : block signal t : std_logic; begin t <= x; q <= t; end block b1; \
             end a;",
        )
        .unwrap();
        let arch = p.architecture("a").unwrap();
        let Concurrent::Block(b) = &arch.body[0] else {
            panic!()
        };
        assert_eq!(b.decls.len(), 1);
        assert_eq!(b.body.len(), 2);
    }
}
