//! Error types for the VHDL1 front end.

use crate::token::Pos;
use std::fmt;

/// An error produced while lexing, parsing or elaborating a VHDL1 program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    kind: SyntaxErrorKind,
    pos: Option<Pos>,
    message: String,
    /// `true` when the error reports an exhausted resource limit (source
    /// size, nesting depth) rather than malformed input.
    resource_limit: bool,
}

/// The phase that produced a [`SyntaxError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntaxErrorKind {
    /// Produced by the lexer.
    Lex,
    /// Produced by the parser.
    Parse,
    /// Produced by elaboration (scoping, uniqueness, binding checks).
    Elaborate,
}

impl SyntaxError {
    /// Creates a lexer error at `pos`.
    pub fn lex(pos: Pos, message: String) -> Self {
        SyntaxError {
            kind: SyntaxErrorKind::Lex,
            pos: Some(pos),
            message,
            resource_limit: false,
        }
    }

    /// Creates a parser error at `pos`.
    pub fn parse(pos: Pos, message: String) -> Self {
        SyntaxError {
            kind: SyntaxErrorKind::Parse,
            pos: Some(pos),
            message,
            resource_limit: false,
        }
    }

    /// Creates an elaboration error (no position available).
    pub fn elaborate(message: String) -> Self {
        SyntaxError {
            kind: SyntaxErrorKind::Elaborate,
            pos: None,
            message,
            resource_limit: false,
        }
    }

    /// Creates an elaboration error at an (optionally) known position —
    /// elaboration works on the AST, where positions are carried by
    /// [`crate::token::Span`]s and may be absent on programmatically built
    /// nodes.
    pub fn elaborate_at(pos: Option<Pos>, message: String) -> Self {
        SyntaxError {
            kind: SyntaxErrorKind::Elaborate,
            pos,
            message,
            resource_limit: false,
        }
    }

    /// Creates a resource-limit error: the front end gave up because a
    /// configured budget (source size, nesting depth) was exhausted, not
    /// because the input was malformed.  Callers with a budget can detect
    /// this through [`SyntaxError::is_resource_limit`] and report it as
    /// resource exhaustion rather than a syntax problem.
    pub fn resource(kind: SyntaxErrorKind, pos: Option<Pos>, message: String) -> Self {
        SyntaxError {
            kind,
            pos,
            message,
            resource_limit: true,
        }
    }

    /// `true` when the error reports an exhausted resource limit rather than
    /// malformed input.
    pub fn is_resource_limit(&self) -> bool {
        self.resource_limit
    }

    /// The phase that produced the error.
    pub fn kind(&self) -> SyntaxErrorKind {
        self.kind
    }

    /// Source position of the error, if known.
    pub fn pos(&self) -> Option<Pos> {
        self.pos
    }

    /// Human-readable description of the error.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.kind {
            SyntaxErrorKind::Lex => "lex error",
            SyntaxErrorKind::Parse => "parse error",
            SyntaxErrorKind::Elaborate => "elaboration error",
        };
        match self.pos {
            Some(p) => write!(f, "{phase} at {p}: {}", self.message),
            None => write!(f, "{phase}: {}", self.message),
        }
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_phase() {
        let e = SyntaxError::parse(Pos { line: 2, col: 7 }, "expected `;`".into());
        assert_eq!(e.to_string(), "parse error at 2:7: expected `;`");
        assert_eq!(e.kind(), SyntaxErrorKind::Parse);
        assert_eq!(e.pos(), Some(Pos { line: 2, col: 7 }));
    }

    #[test]
    fn elaborate_errors_have_no_position() {
        let e = SyntaxError::elaborate("duplicate signal `s`".into());
        assert_eq!(e.to_string(), "elaboration error: duplicate signal `s`");
        assert!(e.pos().is_none());
    }
}
