//! Per-design-unit content fingerprints for incremental re-analysis.
//!
//! The analysis engine in `vhdl1-infoflow` memoizes whole designs by source
//! hash; an edit-session `Workspace` additionally memoizes *per-process*
//! results, keyed by the fingerprints computed here.  A fingerprint must
//! change exactly when a process's analysis-relevant content changes:
//!
//! * it is computed from a **canonical rendering** of the elaborated
//!   process, not from source bytes, so whitespace, comments and formatting
//!   edits anywhere in the file leave untouched processes' fingerprints
//!   intact;
//! * the rendering **includes the block labels** assigned by elaboration.
//!   Labels are unique across the whole design, so an edit that changes the
//!   number of elementary blocks in one process shifts the labels — and
//!   therefore the fingerprints — of every process elaborated after it.
//!   Label-preserving edits (the common editor case: changing an expression,
//!   a target, a sensitivity list) leave other processes' fingerprints
//!   stable;
//! * the rendering **excludes source spans** entirely — spans move on every
//!   edit and carry no analysis weight;
//! * a separate **design-context fingerprint** covers everything a process
//!   analysis reads outside its own body: the design and entity names and
//!   the full signal table (names, kinds, types, initial values).  Unit
//!   fingerprints mix the context in, so a signal-table edit invalidates
//!   every unit.
//!
//! The canonical texts are exposed alongside the hashes so callers can store
//! them as collision guards (the engine's artifact store verifies text
//! equality before serving a hash hit).

use crate::ast::Stmt;
use crate::elaborate::{Design, ElabProcess, SignalKind};
use crate::pretty::pretty_expr;
use std::fmt::Write as _;

/// FNV-1a 64-bit — the same function the analysis engine keys its
/// whole-design memo table with (kept private here; the engine re-exports
/// its own copy).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Canonical rendering of everything a per-process analysis reads *outside*
/// the process body: design name, entity name and the signal table.
///
/// Deterministic and span-free; two designs with equal context text are
/// indistinguishable to any single process's local analyses.
pub fn design_context_text(design: &Design) -> String {
    let mut out = String::with_capacity(128 + design.signals.len() * 32);
    let _ = writeln!(out, "design {} entity {}", design.name, design.entity);
    let _ = writeln!(out, "processes {}", design.processes.len());
    for s in &design.signals {
        let kind = match s.kind {
            SignalKind::PortIn => "in",
            SignalKind::PortOut => "out",
            SignalKind::Internal => "internal",
        };
        let _ = write!(out, "signal {} {kind} {}", s.name, s.ty);
        if let Some(init) = &s.init {
            let _ = write!(out, " := {}", pretty_expr(init));
        }
        out.push('\n');
    }
    out
}

/// Canonical rendering of process `pidx`: name, index, variable table and
/// the labelled body.  Deterministic, span-free, label-preserving.
///
/// Returns an empty string when `pidx` is out of range.
pub fn unit_canonical_text(design: &Design, pidx: usize) -> String {
    let Some(p) = design.processes.get(pidx) else {
        return String::new();
    };
    process_canonical_text(p)
}

fn process_canonical_text(p: &ElabProcess) -> String {
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "process {} #{}", p.name, p.index);
    for v in &p.variables {
        let _ = write!(out, "variable {} {}", v.name, v.ty);
        if let Some(init) = &v.init {
            let _ = write!(out, " := {}", pretty_expr(init));
        }
        out.push('\n');
    }
    out.push_str("begin\n");
    write_stmt(&p.body, &mut out);
    out
}

/// Writes a labelled, span-free rendering of `s`.  `Seq` nests flatten to
/// the same text (they flatten to the same control-flow graph too), while
/// branch structure is delimited explicitly so statement membership is
/// unambiguous.
fn write_stmt(s: &Stmt, out: &mut String) {
    match s {
        Stmt::Null { label } => {
            let _ = writeln!(out, "{label}: null");
        }
        Stmt::VarAssign {
            label,
            target,
            expr,
        } => {
            let _ = writeln!(out, "{label}: {target} := {}", pretty_expr(expr));
        }
        Stmt::SignalAssign {
            label,
            target,
            expr,
        } => {
            let _ = writeln!(out, "{label}: {target} <= {}", pretty_expr(expr));
        }
        Stmt::Wait { label, on, until } => {
            let _ = write!(out, "{label}: wait");
            if !on.is_empty() {
                let _ = write!(out, " on {}", on.join(","));
            }
            if !until.is_true_literal() {
                let _ = write!(out, " until {}", pretty_expr(until));
            }
            out.push('\n');
        }
        Stmt::Seq(a, b) => {
            write_stmt(a, out);
            write_stmt(b, out);
        }
        Stmt::If {
            label,
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{label}: if {}", pretty_expr(cond));
            write_stmt(then_branch, out);
            out.push_str("else\n");
            write_stmt(else_branch, out);
            out.push_str("end if\n");
        }
        Stmt::While { label, cond, body } => {
            let _ = writeln!(out, "{label}: while {}", pretty_expr(cond));
            write_stmt(body, out);
            out.push_str("end loop\n");
        }
    }
}

/// Fingerprint of the design context ([`design_context_text`]).
pub fn design_context_fingerprint(design: &Design) -> u64 {
    fnv1a64(design_context_text(design).as_bytes())
}

/// Fingerprint of process `pidx` with the design context mixed in: equal
/// exactly when both the process rendering and the context rendering are
/// equal (up to hash collision — callers that must rule collisions out
/// compare the canonical texts).
pub fn unit_fingerprint(design: &Design, pidx: usize) -> u64 {
    let context = design_context_fingerprint(design);
    fnv1a64(unit_canonical_text(design, pidx).as_bytes()) ^ context.rotate_left(29)
}

/// Fingerprints of every process of the design, in process order.
pub fn unit_fingerprints(design: &Design) -> Vec<u64> {
    let context = design_context_fingerprint(design);
    design
        .processes
        .iter()
        .map(|p| fnv1a64(process_canonical_text(p).as_bytes()) ^ context.rotate_left(29))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn design(body_a: &str, body_b: &str) -> Design {
        frontend(&format!(
            "entity e is port(a : in std_logic; x : out std_logic; y : out std_logic); end e;
             architecture rtl of e is begin
               pa : process begin {body_a} wait on a; end process pa;
               pb : process begin {body_b} wait on a; end process pb;
             end rtl;"
        ))
        .unwrap()
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let d1 = design("x <= a;", "y <= a;");
        let d2 = design("x <= a;", "y <= a;");
        assert_eq!(unit_fingerprints(&d1), unit_fingerprints(&d2));
        assert_eq!(unit_canonical_text(&d1, 1), unit_canonical_text(&d2, 1));
    }

    #[test]
    fn label_preserving_edit_keeps_other_units_stable() {
        let base = design("x <= a;", "y <= a;");
        // Same block count in pa, so pb's labels — and fingerprint — hold.
        let edit = design("x <= not a;", "y <= a;");
        let fp0 = unit_fingerprints(&base);
        let fp1 = unit_fingerprints(&edit);
        assert_ne!(fp0[0], fp1[0], "edited process must change");
        assert_eq!(fp0[1], fp1[1], "untouched process must be stable");
    }

    #[test]
    fn label_shifting_edit_invalidates_downstream_units() {
        let base = design("x <= a;", "y <= a;");
        // An extra statement in pa shifts every label in pb.
        let edit = design("x <= a; x <= a;", "y <= a;");
        let fp0 = unit_fingerprints(&base);
        let fp1 = unit_fingerprints(&edit);
        assert_ne!(fp0[0], fp1[0]);
        assert_ne!(fp0[1], fp1[1], "label shift must invalidate pb");
    }

    #[test]
    fn whitespace_edits_are_invisible() {
        let d1 = design("x <= a;", "y <= a;");
        let d2 = frontend(
            "entity e is port(a : in std_logic; x : out std_logic; y : out std_logic); end e;
             architecture rtl of e is
             begin
               pa : process begin    x <= a;
                 wait on a; end process pa;
               pb : process
               begin y <= a; wait on a; end process pb;
             end rtl;",
        )
        .unwrap();
        assert_eq!(unit_fingerprints(&d1), unit_fingerprints(&d2));
    }

    #[test]
    fn signal_table_edit_invalidates_every_unit() {
        let base = design("x <= a;", "y <= a;");
        let edit = frontend(
            "entity e is port(a : in std_logic; x : out std_logic; y : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic := '0';
             begin
               pa : process begin x <= a; wait on a; end process pa;
               pb : process begin y <= a; wait on a; end process pb;
             end rtl;",
        )
        .unwrap();
        let fp0 = unit_fingerprints(&base);
        let fp1 = unit_fingerprints(&edit);
        assert_ne!(fp0[0], fp1[0]);
        assert_ne!(fp0[1], fp1[1]);
        assert_ne!(
            design_context_fingerprint(&base),
            design_context_fingerprint(&edit)
        );
    }

    #[test]
    fn out_of_range_unit_is_empty() {
        let d = design("x <= a;", "y <= a;");
        assert_eq!(unit_canonical_text(&d, 99), "");
    }
}
