//! Hand-written lexer for VHDL1.
//!
//! VHDL identifiers and keywords are case-insensitive; the lexer normalises
//! them to lower case.  Comments start with `--` and run to the end of line.
//!
//! The lexer scans the source bytes in place and borrows token payloads from
//! the input wherever the text is already in normal form (lower-case
//! identifiers, upper-case literals) — the common case for machine-generated
//! and conventionally formatted sources — so lexing a large design performs
//! no per-token allocation on the hot path (see `PERF.md`).

use crate::error::SyntaxError;
use crate::token::{Keyword, Pos, Token, TokenKind};
use std::borrow::Cow;

/// Lexes a complete source text into a vector of tokens terminated by
/// [`TokenKind::Eof`].  Identifier and string-literal tokens borrow from
/// `src` when the spelling is already normalised.
///
/// # Errors
///
/// Returns a [`SyntaxError`] on unterminated literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token<'_>>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    idx: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            idx: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.idx + 1).copied()
    }

    /// Advances over one ASCII byte.  Must only be called when the current
    /// byte is known to be ASCII (all VHDL1 token syntax is ASCII).
    fn bump_ascii(&mut self) -> Option<u8> {
        let b = self.peek()?;
        debug_assert!(b.is_ascii(), "bump_ascii on a non-ASCII byte");
        self.idx += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Advances over one character of arbitrary width (used inside literals
    /// and for error reporting, where non-ASCII text may legitimately occur).
    fn bump_char(&mut self) -> Option<char> {
        let c = self.src[self.idx..].chars().next()?;
        self.idx += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token<'a>>, SyntaxError> {
        // Identifiers dominate real sources at roughly one token per 6-8
        // bytes; reserving for that density avoids regrowth churn.
        let mut out = Vec::with_capacity(self.bytes.len() / 6 + 8);
        loop {
            self.skip_trivia();
            let pos = self.pos();
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = match b {
                b'(' => {
                    self.bump_ascii();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump_ascii();
                    TokenKind::RParen
                }
                b';' => {
                    self.bump_ascii();
                    TokenKind::Semicolon
                }
                b',' => {
                    self.bump_ascii();
                    TokenKind::Comma
                }
                b'+' => {
                    self.bump_ascii();
                    TokenKind::Plus
                }
                b'&' => {
                    self.bump_ascii();
                    TokenKind::Ampersand
                }
                b'-' => {
                    // `--` comments are handled in skip_trivia, so this is minus.
                    self.bump_ascii();
                    TokenKind::Minus
                }
                b'=' => {
                    self.bump_ascii();
                    TokenKind::Eq
                }
                b':' => {
                    self.bump_ascii();
                    if self.peek() == Some(b'=') {
                        self.bump_ascii();
                        TokenKind::ColonEq
                    } else {
                        TokenKind::Colon
                    }
                }
                b'<' => {
                    self.bump_ascii();
                    if self.peek() == Some(b'=') {
                        self.bump_ascii();
                        TokenKind::LtEq
                    } else {
                        TokenKind::Lt
                    }
                }
                b'>' => {
                    self.bump_ascii();
                    if self.peek() == Some(b'=') {
                        self.bump_ascii();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                b'/' => {
                    self.bump_ascii();
                    if self.peek() == Some(b'=') {
                        self.bump_ascii();
                        TokenKind::SlashEq
                    } else {
                        return Err(SyntaxError::lex(pos, "expected `/=`".to_string()));
                    }
                }
                b'\'' => {
                    self.bump_ascii();
                    let v = self.bump_char().ok_or_else(|| {
                        SyntaxError::lex(pos, "unterminated character literal".to_string())
                    })?;
                    if self.bump_char() != Some('\'') {
                        return Err(SyntaxError::lex(
                            pos,
                            "character literal must contain exactly one character".to_string(),
                        ));
                    }
                    TokenKind::CharLit(v.to_ascii_uppercase())
                }
                b'"' => {
                    self.bump_ascii();
                    self.string_literal(pos)?
                }
                b if b.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add((d - b'0') as i64))
                                .ok_or_else(|| {
                                    SyntaxError::lex(pos, "integer literal overflows".to_string())
                                })?;
                            self.bump_ascii();
                        } else if d == b'_' {
                            self.bump_ascii();
                        } else {
                            break;
                        }
                    }
                    TokenKind::IntLit(n)
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let start = self.idx;
                    let mut has_upper = false;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            has_upper |= d.is_ascii_uppercase();
                            self.bump_ascii();
                        } else {
                            break;
                        }
                    }
                    let text = &self.src[start..self.idx];
                    let spelled: Cow<'a, str> = if has_upper {
                        Cow::Owned(text.to_ascii_lowercase())
                    } else {
                        Cow::Borrowed(text)
                    };
                    match Keyword::from_str(&spelled) {
                        Some(kw) => TokenKind::Keyword(kw),
                        None => TokenKind::Ident(spelled),
                    }
                }
                _ => {
                    // Decode the full character for the error message.
                    let other = self.bump_char().expect("peeked byte implies a char");
                    return Err(SyntaxError::lex(
                        pos,
                        format!("unexpected character `{other}`"),
                    ));
                }
            };
            out.push(Token { kind, pos });
        }
    }

    /// Scans a string literal body (the opening quote is already consumed),
    /// borrowing the text when it is already upper-case.
    fn string_literal(&mut self, pos: Pos) -> Result<TokenKind<'a>, SyntaxError> {
        let start = self.idx;
        let mut has_lower = false;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b) if b.is_ascii() => {
                    has_lower |= b.is_ascii_lowercase();
                    self.bump_ascii();
                }
                Some(_) => {
                    self.bump_char();
                }
                None => {
                    return Err(SyntaxError::lex(
                        pos,
                        "unterminated string literal".to_string(),
                    ))
                }
            }
        }
        let text = &self.src[start..self.idx];
        self.bump_ascii(); // closing quote
        Ok(TokenKind::StringLit(if has_lower {
            Cow::Owned(text.to_ascii_uppercase())
        } else {
            Cow::Borrowed(text)
        }))
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump_ascii();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    // Comments may contain arbitrary text; scan bytes to the
                    // newline (multi-byte characters never contain `\n`).
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        if b.is_ascii() {
                            self.bump_ascii();
                        } else {
                            self.bump_char();
                        }
                    }
                }
                // Non-ASCII whitespace is not trivia in VHDL1; leave it for
                // the main loop to report as an unexpected character.
                _ => return,
            }
        }
    }
}

impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lexer")
            .field("remaining", &&self.src[self.idx.min(self.src.len())..])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind<'_>> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_symbols_and_keywords() {
        let ks = kinds("entity e is port(a : in std_logic); end e;");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Entity));
        assert_eq!(ks[1], TokenKind::Ident("e".into()));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::StdLogic)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_assignment_operators() {
        let ks = kinds("x := '1'; s <= \"01\";");
        assert!(ks.contains(&TokenKind::ColonEq));
        assert!(ks.contains(&TokenKind::LtEq));
        assert!(ks.contains(&TokenKind::CharLit('1')));
        assert!(ks.contains(&TokenKind::StringLit("01".into())));
    }

    #[test]
    fn case_insensitive_identifiers_and_keywords() {
        let ks = kinds("ENTITY Foo IS");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Entity));
        assert_eq!(ks[1], TokenKind::Ident("foo".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::Is));
    }

    #[test]
    fn lowercase_identifiers_borrow_from_the_source() {
        let src = "latch_1 OUT_reg";
        let toks = lex(src).unwrap();
        match &toks[0].kind {
            TokenKind::Ident(s) => assert!(matches!(s, Cow::Borrowed(_)), "should borrow"),
            other => panic!("expected ident, got {other:?}"),
        }
        match &toks[1].kind {
            TokenKind::Ident(s) => {
                assert!(matches!(s, Cow::Owned(_)), "mixed case must normalise");
                assert_eq!(s, "out_reg");
            }
            other => panic!("expected ident, got {other:?}"),
        }
    }

    #[test]
    fn uppercase_string_literals_borrow_from_the_source() {
        let toks = lex("\"01ZX\" \"01zx\"").unwrap();
        match &toks[0].kind {
            TokenKind::StringLit(s) => assert!(matches!(s, Cow::Borrowed(_))),
            other => panic!("expected string literal, got {other:?}"),
        }
        match &toks[1].kind {
            TokenKind::StringLit(s) => assert_eq!(s, "01ZX"),
            other => panic!("expected string literal, got {other:?}"),
        }
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a -- a comment with -- dashes\n b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_may_contain_non_ascii_text() {
        let ks = kinds("a -- flot paalidelighed\n-- nøgle π→σ\n b");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1], TokenKind::Ident("b".into()));
    }

    #[test]
    fn lexes_relational_operators() {
        let ks = kinds("= /= < > >= <=");
        assert_eq!(
            ks,
            vec![
                TokenKind::Eq,
                TokenKind::SlashEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::LtEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_integers_with_underscores() {
        assert_eq!(kinds("1_024")[0], TokenKind::IntLit(1024));
    }

    #[test]
    fn char_literal_uppercased() {
        assert_eq!(kinds("'z'")[0], TokenKind::CharLit('Z'));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"01").is_err());
    }

    #[test]
    fn errors_on_stray_slash() {
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn errors_on_non_ascii_outside_comments() {
        assert!(lex("π <= a;").is_err());
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }
}
