//! Hand-written lexer for VHDL1.
//!
//! VHDL identifiers and keywords are case-insensitive; the lexer normalises
//! them to lower case.  Comments start with `--` and run to the end of line.

use crate::error::SyntaxError;
use crate::token::{Keyword, Pos, Token, TokenKind};

/// Lexes a complete source text into a vector of tokens terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`SyntaxError`] on unterminated literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<char>,
    idx: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.chars().collect(),
            idx: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = match c {
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                ';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                '+' => {
                    self.bump();
                    TokenKind::Plus
                }
                '&' => {
                    self.bump();
                    TokenKind::Ampersand
                }
                '-' => {
                    // `--` comments are handled in skip_trivia, so this is minus.
                    self.bump();
                    TokenKind::Minus
                }
                '=' => {
                    self.bump();
                    TokenKind::Eq
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::ColonEq
                    } else {
                        TokenKind::Colon
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::LtEq
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                '/' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::SlashEq
                    } else {
                        return Err(SyntaxError::lex(pos, "expected `/=`".to_string()));
                    }
                }
                '\'' => {
                    self.bump();
                    let v = self.bump().ok_or_else(|| {
                        SyntaxError::lex(pos, "unterminated character literal".to_string())
                    })?;
                    if self.bump() != Some('\'') {
                        return Err(SyntaxError::lex(
                            pos,
                            "character literal must contain exactly one character".to_string(),
                        ));
                    }
                    TokenKind::CharLit(v.to_ascii_uppercase())
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some(ch) => s.push(ch.to_ascii_uppercase()),
                            None => {
                                return Err(SyntaxError::lex(
                                    pos,
                                    "unterminated string literal".to_string(),
                                ))
                            }
                        }
                    }
                    TokenKind::StringLit(s)
                }
                c if c.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add((d as u8 - b'0') as i64))
                                .ok_or_else(|| {
                                    SyntaxError::lex(pos, "integer literal overflows".to_string())
                                })?;
                            self.bump();
                        } else if d == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    TokenKind::IntLit(n)
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            s.push(d.to_ascii_lowercase());
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    match Keyword::from_str(&s) {
                        Some(kw) => TokenKind::Keyword(kw),
                        None => TokenKind::Ident(s),
                    }
                }
                other => {
                    return Err(SyntaxError::lex(
                        pos,
                        format!("unexpected character `{other}`"),
                    ))
                }
            };
            out.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }
}

impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lexer")
            .field("remaining", &&self.src[self.idx.min(self.src.len())..])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_symbols_and_keywords() {
        let ks = kinds("entity e is port(a : in std_logic); end e;");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Entity));
        assert_eq!(ks[1], TokenKind::Ident("e".into()));
        assert!(ks.contains(&TokenKind::Keyword(Keyword::StdLogic)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_assignment_operators() {
        let ks = kinds("x := '1'; s <= \"01\";");
        assert!(ks.contains(&TokenKind::ColonEq));
        assert!(ks.contains(&TokenKind::LtEq));
        assert!(ks.contains(&TokenKind::CharLit('1')));
        assert!(ks.contains(&TokenKind::StringLit("01".into())));
    }

    #[test]
    fn case_insensitive_identifiers_and_keywords() {
        let ks = kinds("ENTITY Foo IS");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Entity));
        assert_eq!(ks[1], TokenKind::Ident("foo".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::Is));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a -- a comment with -- dashes\n b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_relational_operators() {
        let ks = kinds("= /= < > >= <=");
        assert_eq!(
            ks,
            vec![
                TokenKind::Eq,
                TokenKind::SlashEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::LtEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_integers_with_underscores() {
        assert_eq!(kinds("1_024")[0], TokenKind::IntLit(1024));
    }

    #[test]
    fn char_literal_uppercased() {
        assert_eq!(kinds("'z'")[0], TokenKind::CharLit('Z'));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"01").is_err());
    }

    #[test]
    fn errors_on_stray_slash() {
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }
}
