//! Round-trip property tests: `parse(pretty(ast)) == ast` for randomly
//! generated ASTs, and `parse(pretty(parse(src))) == parse(src)` for random
//! concrete programs.  These shake out pretty-printer precedence and
//! escaping bugs (e.g. the non-associative relational operators, unlabelled
//! processes) that the small hand-written cases miss.

use proptest::TestRng;
use vhdl1_syntax::{
    parse, parse_expression, parse_statements, pretty_expr, pretty_program, pretty_stmt,
    Architecture, BinOp, Concurrent, Decl, DesignUnit, Entity, Expr, Port, PortMode, Process,
    Program, Slice, Span, Stmt, Target, Type,
};

const NAMES: &[&str] = &["a", "b", "c", "x", "y", "s", "t", "clk", "data", "q"];
const LOGIC_CHARS: &[char] = &['0', '1', 'Z', 'X', 'U', 'W', 'L', 'H', '-'];

fn pick<'x, T>(rng: &mut TestRng, xs: &'x [T]) -> &'x T {
    &xs[rng.below(xs.len() as u64) as usize]
}

fn gen_slice(rng: &mut TestRng) -> Slice {
    let a = rng.below(8) as i64;
    let b = rng.below(8) as i64;
    match rng.below(2) {
        0 => Slice::downto(a.max(b), a.min(b)),
        _ => Slice::to(a.min(b), a.max(b)),
    }
}

fn gen_expr(rng: &mut TestRng, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.below(3) == 0;
    if leaf {
        match rng.below(4) {
            0 => Expr::Logic(*pick(rng, LOGIC_CHARS)),
            1 => {
                let len = 1 + rng.below(8) as usize;
                Expr::Vector((0..len).map(|_| *pick(rng, &['0', '1'])).collect())
            }
            2 => Expr::Int(rng.below(1000) as i64),
            _ => {
                let name = (*pick(rng, NAMES)).to_string();
                if rng.below(3) == 0 {
                    Expr::slice(name, gen_slice(rng))
                } else {
                    Expr::name(name)
                }
            }
        }
    } else {
        match rng.below(5) {
            0 => Expr::not(gen_expr(rng, depth - 1)),
            _ => {
                let op = *pick(
                    rng,
                    &[
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                        BinOp::Nand,
                        BinOp::Nor,
                        BinOp::Xnor,
                        BinOp::Eq,
                        BinOp::Neq,
                        BinOp::Lt,
                        BinOp::Le,
                        BinOp::Gt,
                        BinOp::Ge,
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Concat,
                    ],
                );
                Expr::binary(op, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1))
            }
        }
    }
}

fn gen_target(rng: &mut TestRng) -> Target {
    let name = (*pick(rng, NAMES)).to_string();
    if rng.below(3) == 0 {
        Target::sliced(name, gen_slice(rng))
    } else {
        Target::whole(name)
    }
}

fn gen_stmt(rng: &mut TestRng, depth: u32) -> Stmt {
    let simple = depth == 0 || rng.below(2) == 0;
    if simple {
        match rng.below(4) {
            0 => Stmt::Null { label: 0 },
            1 => Stmt::VarAssign {
                label: 0,
                target: gen_target(rng),
                expr: gen_expr(rng, 2),
            },
            2 => Stmt::SignalAssign {
                label: 0,
                target: gen_target(rng),
                expr: gen_expr(rng, 2),
            },
            _ => gen_wait(rng),
        }
    } else {
        // Note: no bare `Seq` arm here.  The parser only ever builds `Seq`
        // nodes as `Stmt::seq` over non-`Seq` elements (its canonical
        // balanced form); the generator mirrors that so exact tree equality
        // is the right comparison.
        match rng.below(2) {
            0 => Stmt::If {
                label: 0,
                cond: gen_expr(rng, 2),
                then_branch: Box::new(gen_stmt_seq(rng, depth - 1)),
                else_branch: Box::new(if rng.below(2) == 0 {
                    Stmt::Null { label: 0 }
                } else {
                    gen_stmt_seq(rng, depth - 1)
                }),
            },
            _ => Stmt::While {
                label: 0,
                cond: gen_expr(rng, 2),
                body: Box::new(gen_stmt_seq(rng, depth - 1)),
            },
        }
    }
}

/// Wait statements must stay canonical: an empty `on` list with a non-true
/// `until` would be re-defaulted by the parser to the free names of the
/// condition, so the generator only emits shapes the parser preserves.
fn gen_wait(rng: &mut TestRng) -> Stmt {
    match rng.below(3) {
        0 => Stmt::Wait {
            label: 0,
            on: vec![],
            until: Expr::one(),
        },
        1 => Stmt::Wait {
            label: 0,
            on: vec![(*pick(rng, NAMES)).to_string()],
            until: Expr::one(),
        },
        _ => {
            let cond = Expr::binary(BinOp::Eq, Expr::name(*pick(rng, NAMES)), Expr::one());
            let mut on = cond.referenced_names();
            if rng.below(2) == 0 {
                let extra = (*pick(rng, NAMES)).to_string();
                if !on.contains(&extra) {
                    on.push(extra);
                }
            }
            Stmt::Wait {
                label: 0,
                on,
                until: cond,
            }
        }
    }
}

fn gen_stmt_seq(rng: &mut TestRng, depth: u32) -> Stmt {
    let n = 1 + rng.below(4) as usize;
    Stmt::seq((0..n).map(|_| gen_stmt(rng, depth)).collect())
}

fn gen_decl(rng: &mut TestRng, signal: bool) -> Decl {
    let name = format!("{}_{}", pick(rng, NAMES), rng.below(100));
    let ty = match rng.below(2) {
        0 => Type::StdLogic,
        _ => Type::vector_downto(7, 0),
    };
    let init = (rng.below(3) == 0).then(|| match &ty {
        Type::StdLogic => Expr::zero(),
        Type::StdLogicVector { .. } => Expr::Vector("00000000".into()),
    });
    let span = Span::NONE;
    if signal {
        Decl::Signal {
            name,
            ty,
            init,
            span,
        }
    } else {
        Decl::Variable {
            name,
            ty,
            init,
            span,
        }
    }
}

fn gen_program(rng: &mut TestRng) -> Program {
    let mut ports = Vec::new();
    for (i, mode) in [(0, PortMode::In), (1, PortMode::Out)] {
        ports.push(Port {
            name: format!("p{i}"),
            mode,
            ty: Type::StdLogic,
            span: Span::NONE,
        });
    }
    let mut body: Vec<Concurrent> = Vec::new();
    let n = 1 + rng.below(3);
    for i in 0..n {
        match rng.below(3) {
            0 => body.push(Concurrent::Assign {
                target: gen_target(rng),
                expr: gen_expr(rng, 2),
            }),
            _ => body.push(Concurrent::Process(Process {
                name: format!("proc_{i}"),
                decls: (0..rng.below(3)).map(|_| gen_decl(rng, false)).collect(),
                body: gen_stmt_seq(rng, 2),
            })),
        }
    }
    Program {
        units: vec![
            DesignUnit::Entity(Entity {
                name: "e".into(),
                ports,
            }),
            DesignUnit::Architecture(Architecture {
                name: "rtl".into(),
                entity: "e".into(),
                decls: (0..rng.below(3)).map(|_| gen_decl(rng, true)).collect(),
                body,
            }),
        ],
    }
}

#[test]
fn random_expressions_roundtrip() {
    let mut rng = TestRng::deterministic("expr_roundtrip");
    for case in 0..2000 {
        let e = gen_expr(&mut rng, 4);
        let printed = pretty_expr(&e);
        let reparsed = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("case {case}: `{printed}` does not parse: {err}"));
        assert_eq!(e, reparsed, "case {case}: `{printed}` reparsed differently");
    }
}

#[test]
fn relational_chains_need_parentheses() {
    // The regression the property test first caught: a relational operand on
    // the left of a relational operator must parenthesise.
    let e = Expr::binary(
        BinOp::Eq,
        Expr::binary(BinOp::Eq, Expr::name("a"), Expr::name("b")),
        Expr::name("c"),
    );
    let printed = pretty_expr(&e);
    assert_eq!(printed, "(a = b) = c");
    assert_eq!(parse_expression(&printed).unwrap(), e);
}

#[test]
fn random_statements_roundtrip() {
    let mut rng = TestRng::deterministic("stmt_roundtrip");
    for case in 0..500 {
        let s = gen_stmt_seq(&mut rng, 3);
        let mut printed = String::new();
        pretty_stmt(&s, 0, &mut printed);
        let reparsed = parse_statements(&printed)
            .unwrap_or_else(|err| panic!("case {case}: does not parse: {err}\n{printed}"));
        assert_eq!(s, reparsed, "case {case}:\n{printed}");
    }
}

#[test]
fn random_programs_roundtrip() {
    let mut rng = TestRng::deterministic("program_roundtrip");
    for case in 0..200 {
        let p = gen_program(&mut rng);
        let printed = pretty_program(&p);
        let reparsed =
            parse(&printed).unwrap_or_else(|err| panic!("case {case}: {err}\n{printed}"));
        assert_eq!(p, reparsed, "case {case}:\n{printed}");
    }
}

#[test]
fn unlabelled_process_roundtrips() {
    let src = "architecture a of e is begin process begin x := '1'; wait on a; end process; end a;";
    let p = parse(src).unwrap();
    let printed = pretty_program(&p);
    assert_eq!(parse(&printed).unwrap(), p, "printed:\n{printed}");
}

#[test]
fn reparse_is_a_fixed_point_of_pretty() {
    // pretty ∘ parse is idempotent: printing a reparsed program reproduces
    // the same text (pretty output is already in canonical form).
    let mut rng = TestRng::deterministic("fixed_point");
    for _ in 0..100 {
        let p = gen_program(&mut rng);
        let once = pretty_program(&p);
        let twice = pretty_program(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
