//! Dynamic flow witnessing by secret-perturbation differential simulation.
//!
//! The static analysis (Tolstrup/Nielson/Nielson, PaCT 2005) predicts flows;
//! this crate *observes* them.  For each input port `src` of a design it runs
//! a pair of twin simulations over one shared [`CompiledDesign`]: both twins
//! receive identical seeded stimulus on every input except `src`, which is
//! driven with two deliberately distinct values.  Any resource (signal or
//! process variable) whose state differs between the twins after a round has
//! demonstrably received information from `src` — a *witnessed* dynamic flow,
//! in the style of Isadora's trace-mined flow properties (arXiv:2106.07449).
//! `(src, output)` pairs that never diverge across all rounds become
//! candidate `no-flow(src, sink)` properties.
//!
//! Witnessing is deliberately one-sided: a witnessed flow is ground truth (a
//! concrete pair of executions distinguishes the sink on `src`), while an
//! unwitnessed pair is only evidence of absence bounded by the stimulus.
//! Cross-checking both halves against a static flow graph — witnessed flows
//! must be statically predicted (soundness), static edges never witnessed
//! measure conservatism (precision/coverage, after Meza/Kastner,
//! arXiv:2304.08263) — lives in `vhdl1-infoflow`, which layers the engine
//! query `Analysis::dynamic_flows` on top of [`witness`].
//!
//! Everything here is deterministic: stimulus derives from a [`SplitMix64`]
//! stream keyed on `(seed, source index)`, so a report depends only on the
//! design, the options and nothing else (no scheduling, no global state).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vhdl1_sim::{CompiledDesign, SimError, SimOptions, Simulator, Value};
use vhdl1_syntax::ast::{BinOp, Expr, Stmt};
use vhdl1_syntax::elaborate::{Design, SignalKind};

/// Parameters of a differential witnessing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynFlowOptions {
    /// Stimulus rounds per perturbation source.  Each round drives every
    /// input once and runs both twins to quiescence.
    pub rounds: u64,
    /// Seed of the deterministic stimulus stream.
    pub seed: u64,
    /// Delta-cycle cap for every individual run to quiescence (the initial
    /// settle and each round, per twin).
    pub max_deltas_per_run: u64,
    /// Statement-step cap per twin simulator instance, summed over all of
    /// its rounds (mapped to [`SimOptions::max_total_steps`]).
    pub max_total_steps: Option<u64>,
}

impl Default for DynFlowOptions {
    fn default() -> Self {
        DynFlowOptions {
            rounds: 16,
            seed: 1,
            max_deltas_per_run: 10_000,
            max_total_steps: None,
        }
    }
}

/// The outcome of [`witness`]: which resources diverged under perturbation
/// of which input, and the derived witnessed / no-flow pairs.
///
/// All collections are deterministically ordered (sources and outputs in
/// design declaration order, divergence sets as `BTreeSet`s), so two runs
/// with equal inputs produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessReport {
    /// Stimulus rounds per source, as configured.
    pub rounds: u64,
    /// Stimulus seed, as configured.
    pub seed: u64,
    /// The perturbation sources: every input port, in declaration order.
    pub sources: Vec<String>,
    /// Every output port, in declaration order.
    pub outputs: Vec<String>,
    /// For each source, every non-input resource (signal or process
    /// variable) observed to differ between the twins after some round.
    pub divergence: BTreeMap<String, BTreeSet<String>>,
    /// Witnessed `(src, output port)` flows: the output diverged under
    /// perturbation of the source.  Each pair is backed by a concrete
    /// two-execution counterexample to non-interference.
    pub witnessed: Vec<(String, String)>,
    /// Candidate `no-flow(src, output)` properties: pairs never witnessed
    /// within the configured rounds (Isadora-style mined properties).
    pub no_flows: Vec<(String, String)>,
    /// Delta cycles consumed, summed over all twins of all sources.
    pub total_deltas: u64,
    /// Statement steps consumed, summed over all twins of all sources.
    pub total_steps: u64,
}

impl WitnessReport {
    /// The resources that diverged under perturbation of `src` (empty when
    /// the source is unknown or never caused divergence).
    pub fn diverged(&self, src: &str) -> BTreeSet<String> {
        self.divergence.get(src).cloned().unwrap_or_default()
    }

    /// Whether a specific `(src, sink)` flow was witnessed dynamically.
    pub fn has_witness(&self, src: &str, sink: &str) -> bool {
        self.divergence.get(src).is_some_and(|d| d.contains(sink))
    }
}

/// The SplitMix64 generator: tiny, seedable, and statistically solid for
/// stimulus purposes.  Public so callers can derive auxiliary deterministic
/// streams keyed consistently with the witness stimulus.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Mixes a seed with a source index into an independent stream seed.
fn stream_seed(seed: u64, source_index: usize) -> u64 {
    let mut rng = SplitMix64::new(seed ^ (source_index as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    rng.next_u64()
}

/// The `(width, bits)` form of a literal expression, when it has one.
/// Integer literals yield width 0 (context-sized: usable at any width).
fn literal_bits(expr: &Expr) -> Option<(usize, u128)> {
    match expr {
        Expr::Logic('0') => Some((1, 0)),
        Expr::Logic('1') => Some((1, 1)),
        Expr::Vector(s) if s.len() <= 128 && s.chars().all(|c| c == '0' || c == '1') => {
            let bits = s
                .chars()
                .fold(0u128, |acc, c| (acc << 1) | u128::from(c == '1'));
            Some((s.len(), bits))
        }
        Expr::Int(i) if *i >= 0 => Some((0, *i as u128)),
        _ => None,
    }
}

/// Walks every expression of every process body, in a deterministic order.
fn walk_design_exprs(design: &Design, visit: &mut dyn FnMut(&Expr)) {
    for proc in &design.processes {
        let mut stmts = vec![&proc.body];
        while let Some(stmt) = stmts.pop() {
            match stmt {
                Stmt::Null { .. } => {}
                Stmt::VarAssign { expr, .. } | Stmt::SignalAssign { expr, .. } => {
                    visit_expr_tree(expr, visit)
                }
                Stmt::Wait { until, .. } => visit_expr_tree(until, visit),
                Stmt::Seq(a, b) => {
                    stmts.push(a);
                    stmts.push(b);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    visit_expr_tree(cond, visit);
                    stmts.push(then_branch);
                    stmts.push(else_branch);
                }
                Stmt::While { cond, body, .. } => {
                    visit_expr_tree(cond, visit);
                    stmts.push(body);
                }
            }
        }
    }
}

fn visit_expr_tree(expr: &Expr, visit: &mut dyn FnMut(&Expr)) {
    // Small explicit stack: expression trees can be deep (hostile corpus).
    let mut stack = vec![expr];
    while let Some(e) = stack.pop() {
        visit(e);
        match e {
            Expr::Unary { expr, .. } => stack.push(expr),
            Expr::Binary { lhs, rhs, .. } => {
                stack.push(lhs);
                stack.push(rhs);
            }
            _ => {}
        }
    }
}

/// Harvests the vector and integer literals of a design's process bodies as
/// stimulus candidates, widest-coverage style: branch conditions like
/// `secret = "10110100"` only diverge when the comparison constant is
/// actually driven, so the stimulus plan replays every harvested constant
/// round-robin on the perturbed twin.  Literals appearing as direct operands
/// of a comparison (`=`, `/=`, `<`, …) are the design's branch *sentinels*
/// and sort first, so a short round budget still reaches every one of them
/// before spending rounds on plain data constants.  Returns deduplicated
/// `(width, bits)` pairs; integer literals harvest with width 0
/// (context-sized: usable at any width).
pub fn harvest_constants(design: &Design) -> Vec<(usize, u128)> {
    let mut out: Vec<(usize, u128)> = Vec::new();
    let mut seen: BTreeSet<(usize, u128)> = BTreeSet::new();
    // Pass 1: comparison sentinels.
    walk_design_exprs(design, &mut |e| {
        if let Expr::Binary { op, lhs, rhs } = e {
            if matches!(
                op,
                BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                for side in [lhs.as_ref(), rhs.as_ref()] {
                    if let Some((width, bits)) = literal_bits(side) {
                        if seen.insert((width, bits)) {
                            out.push((width, bits));
                        }
                    }
                }
            }
        }
    });
    // Pass 2: every remaining literal.
    walk_design_exprs(design, &mut |e| {
        if let Some((width, bits)) = literal_bits(e) {
            if seen.insert((width, bits)) {
                out.push((width, bits));
            }
        }
    });
    out
}

fn width_mask(width: usize) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// The deterministic per-source stimulus plan.
struct Stimulus {
    rng: SplitMix64,
    /// Per-input phase bits for width-1 toggling.
    phases: Vec<u64>,
    /// Harvested `(width, bits)` constants of the design.
    harvested: Vec<(usize, u128)>,
}

impl Stimulus {
    fn new(
        seed: u64,
        source_index: usize,
        input_count: usize,
        harvested: &[(usize, u128)],
    ) -> Stimulus {
        let mut rng = SplitMix64::new(stream_seed(seed, source_index));
        let phases = (0..input_count).map(|_| rng.next_u64()).collect();
        Stimulus {
            rng,
            phases,
            harvested: harvested.to_vec(),
        }
    }

    /// Width-matched harvested candidates (exact width, or context-sized
    /// integers that fit the width).
    fn candidates(&self, width: usize) -> Vec<u128> {
        let mask = width_mask(width);
        self.harvested
            .iter()
            .filter(|(w, bits)| *w == width || (*w == 0 && *bits <= mask))
            .map(|(_, bits)| *bits & mask)
            .collect()
    }

    fn random_bits(&mut self, width: usize) -> u128 {
        let lo = u128::from(self.rng.next_u64());
        let hi = u128::from(self.rng.next_u64());
        ((hi << 64) | lo) & width_mask(width)
    }

    /// The base stimulus for input `j` at `round`.  Width-1 inputs toggle
    /// every round (so clocked processes wake deterministically each round);
    /// wider inputs draw random bits, occasionally replaying a harvested
    /// constant to exercise data-dependent branches.
    fn base_value(&mut self, j: usize, width: usize, round: u64) -> u128 {
        if width == 1 {
            u128::from(self.phases[j].wrapping_add(round) & 1)
        } else {
            let roll = self.rng.next_u64();
            let bits = self.random_bits(width);
            let cands = self.candidates(width);
            if roll.is_multiple_of(4) && !cands.is_empty() {
                cands[(roll / 4) as usize % cands.len()]
            } else {
                bits
            }
        }
    }

    /// The perturbed stimulus for the source input.  Width-1 sources freeze
    /// at `0` while the base twin keeps toggling: complementing would wake
    /// both twins' processes on every round (each sees an edge), hiding pure
    /// synchronisation flows — a frozen source produces *no* events, so any
    /// process waiting on it advances in the base twin only and the
    /// wake-count difference becomes observable state divergence.  Wider
    /// sources round-robin over the harvested constants (guaranteeing every
    /// comparison sentinel of the design is driven), falling back to the
    /// bitwise complement, always distinct from `base`.
    fn perturbed_value(&self, base: u128, width: usize, round: u64) -> u128 {
        let mask = width_mask(width);
        let complement = !base & mask;
        if width == 1 {
            return 0;
        }
        let cands = self.candidates(width);
        if cands.is_empty() {
            return complement;
        }
        let cand = cands[(round as usize) % cands.len()];
        if cand != base {
            cand
        } else {
            complement
        }
    }
}

/// Runs the secret-perturbation differential simulation and reports every
/// witnessed dynamic flow of the design.
///
/// For each input port (in declaration order) the design is simulated as a
/// twin pair sharing one compile: both twins settle, then for each round
/// every input is driven with an identical seeded value except the
/// perturbation source, which receives two distinct values.  After each
/// round's quiescence, every non-input signal and every process variable is
/// compared across the twins; differing resources accumulate into the
/// source's divergence set.
///
/// # Errors
///
/// Returns the underlying [`SimError`] when the design fails to compile,
/// a run exceeds [`DynFlowOptions::max_deltas_per_run`] delta cycles
/// ([`SimError::DeltaLimitExceeded`]), or a twin exceeds
/// [`DynFlowOptions::max_total_steps`] ([`SimError::TotalStepLimitExceeded`]).
pub fn witness(design: &Design, opts: &DynFlowOptions) -> Result<WitnessReport, SimError> {
    let inputs: Vec<(String, usize)> = design
        .signals
        .iter()
        .filter(|s| s.kind == SignalKind::PortIn)
        .map(|s| (s.name.clone(), s.ty.width()))
        .collect();
    let outputs: Vec<String> = design
        .signals
        .iter()
        .filter(|s| s.kind == SignalKind::PortOut)
        .map(|s| s.name.clone())
        .collect();
    let observed: Vec<String> = design
        .signals
        .iter()
        .filter(|s| s.kind != SignalKind::PortIn)
        .map(|s| s.name.clone())
        .collect();
    let variables: Vec<(String, String)> = design
        .processes
        .iter()
        .flat_map(|p| {
            p.variables
                .iter()
                .map(move |v| (p.name.clone(), v.name.clone()))
        })
        .collect();
    let harvested = harvest_constants(design);

    let compiled = Arc::new(CompiledDesign::compile(design)?);
    let sim_options = SimOptions {
        max_total_steps: opts.max_total_steps,
        ..SimOptions::default()
    };

    let mut divergence: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut total_deltas = 0u64;
    let mut total_steps = 0u64;

    for (si, (src, src_width)) in inputs.iter().enumerate() {
        let mut stim = Stimulus::new(opts.seed, si, inputs.len(), &harvested);
        let mut base = Simulator::from_compiled(Arc::clone(&compiled), sim_options);
        let mut pert = Simulator::from_compiled(Arc::clone(&compiled), sim_options);
        // Preset every input to a defined value before the settle: inputs
        // otherwise start uninitialised (`U`), and a feedback signal computed
        // from a `U` input during the first process run latches `U` forever
        // (`U` is absorbing), leaving both twins identically stuck and
        // witnessing nothing.  A preset (unlike a drive) is visible to the
        // very first run of every process, like a VHDL port default.
        for (name, width) in &inputs {
            base.preset_input(name, Value::from_unsigned(0, *width))?;
            pert.preset_input(name, Value::from_unsigned(0, *width))?;
        }
        base.run_until_quiescent(opts.max_deltas_per_run)?;
        pert.run_until_quiescent(opts.max_deltas_per_run)?;

        let mut diverged: BTreeSet<String> = BTreeSet::new();
        for round in 0..opts.rounds {
            for (j, (name, width)) in inputs.iter().enumerate() {
                let bits = stim.base_value(j, *width, round);
                base.drive_input(name, Value::from_unsigned(bits, *width))?;
                let bits = if j == si {
                    stim.perturbed_value(bits, *src_width, round)
                } else {
                    bits
                };
                pert.drive_input(name, Value::from_unsigned(bits, *width))?;
            }
            base.run_until_quiescent(opts.max_deltas_per_run)?;
            pert.run_until_quiescent(opts.max_deltas_per_run)?;
            for name in &observed {
                if !diverged.contains(name) && base.signal(name) != pert.signal(name) {
                    diverged.insert(name.clone());
                }
            }
            for (proc, var) in &variables {
                if !diverged.contains(var) && base.variable(proc, var) != pert.variable(proc, var) {
                    diverged.insert(var.clone());
                }
            }
        }
        total_deltas += base.delta_count() + pert.delta_count();
        total_steps += base.total_step_count() + pert.total_step_count();
        divergence.insert(src.clone(), diverged);
    }

    let mut witnessed = Vec::new();
    let mut no_flows = Vec::new();
    for (src, _) in &inputs {
        let diverged = &divergence[src];
        for out in &outputs {
            if diverged.contains(out) {
                witnessed.push((src.clone(), out.clone()));
            } else {
                no_flows.push((src.clone(), out.clone()));
            }
        }
    }

    Ok(WitnessReport {
        rounds: opts.rounds,
        seed: opts.seed,
        sources: inputs.into_iter().map(|(n, _)| n).collect(),
        outputs,
        divergence,
        witnessed,
        no_flows,
        total_deltas,
        total_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontend(src: &str) -> Design {
        vhdl1_syntax::frontend(src).expect("test design elaborates")
    }

    const WIRE: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
        architecture rtl of e is begin
          p : process begin b <= a; wait on a; end process p;
        end rtl;";

    const CONSTANT_SINK: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
        architecture rtl of e is begin
          p : process begin b <= '1'; wait on a; end process p;
        end rtl;";

    #[test]
    fn wire_flow_is_witnessed() {
        let design = frontend(WIRE);
        let report = witness(&design, &DynFlowOptions::default()).unwrap();
        assert_eq!(report.sources, vec!["a"]);
        assert_eq!(report.outputs, vec!["b"]);
        assert!(report.has_witness("a", "b"));
        assert_eq!(report.witnessed, vec![("a".into(), "b".into())]);
        assert!(report.no_flows.is_empty());
        assert!(report.total_deltas > 0);
    }

    #[test]
    fn constant_sink_mines_a_no_flow_property() {
        let design = frontend(CONSTANT_SINK);
        let report = witness(&design, &DynFlowOptions::default()).unwrap();
        assert!(!report.has_witness("a", "b"));
        assert_eq!(report.no_flows, vec![("a".into(), "b".into())]);
    }

    #[test]
    fn branch_sentinel_is_witnessed_via_harvested_constants() {
        // The leak only fires when the input equals the 8-bit sentinel; pure
        // random stimulus would witness it with probability ~rounds/256 — the
        // harvested-constant round-robin makes it deterministic.
        let src = "entity e is port(s : in std_logic_vector(7 downto 0);
                                    o : out std_logic_vector(7 downto 0)); end e;
            architecture rtl of e is begin
              p : process begin
                if s = \"10110100\" then o <= \"11111111\"; else o <= \"00000000\"; end if;
                wait on s;
              end process p;
            end rtl;";
        let design = frontend(src);
        let harvested = harvest_constants(&design);
        assert!(harvested.contains(&(8, 0b1011_0100)));
        let report = witness(&design, &DynFlowOptions::default()).unwrap();
        assert!(report.has_witness("s", "o"));
    }

    #[test]
    fn variable_divergence_is_observed() {
        let src = "entity e is port(a : in std_logic_vector(7 downto 0);
                                    b : out std_logic_vector(7 downto 0)); end e;
            architecture rtl of e is begin
              p : process
                variable v : std_logic_vector(7 downto 0);
              begin
                v := a; b <= \"00000001\"; wait on a;
              end process p;
            end rtl;";
        let design = frontend(src);
        let report = witness(&design, &DynFlowOptions::default()).unwrap();
        let diverged = report.diverged("a");
        assert!(
            diverged.contains("v"),
            "variable v should diverge: {diverged:?}"
        );
        assert!(!report.has_witness("a", "b"));
    }

    #[test]
    fn reports_are_deterministic() {
        let design = frontend(WIRE);
        let opts = DynFlowOptions {
            rounds: 8,
            seed: 42,
            ..DynFlowOptions::default()
        };
        assert_eq!(
            witness(&design, &opts).unwrap(),
            witness(&design, &opts).unwrap()
        );
    }

    #[test]
    fn distinct_seeds_are_distinct_streams() {
        let mut a = SplitMix64::new(stream_seed(1, 0));
        let mut b = SplitMix64::new(stream_seed(1, 1));
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn delta_cap_surfaces_as_sim_error() {
        let design = frontend(WIRE);
        let opts = DynFlowOptions {
            max_deltas_per_run: 0,
            ..DynFlowOptions::default()
        };
        match witness(&design, &opts) {
            Err(SimError::DeltaLimitExceeded { limit: 0 }) => {}
            other => panic!("expected delta-limit error, got {other:?}"),
        }
    }
}
