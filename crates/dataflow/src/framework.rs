//! A small monotone-framework solver for forward data-flow equation systems
//! over powerset lattices, in the style of *Principles of Program Analysis*.
//!
//! Both Reaching Definitions analyses of the paper are instances: the
//! over-approximation combines predecessor information by union, the
//! under-approximation by the *dotted intersection* operator `⋂̇` of
//! Section 4.1 (`⋂̇ ∅ = ∅`), which keeps the least solution of the equation
//! system well-defined.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use vhdl1_syntax::Label;

/// How information flowing from several predecessors is combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combine {
    /// May-analysis: union of predecessor exit sets.
    Union,
    /// Must-analysis: the dotted intersection `⋂̇` (`⋂̇ ∅ = ∅`).
    IntersectDotted,
}

/// A forward data-flow equation system over a powerset of facts `F`.
#[derive(Debug, Clone)]
pub struct Equations<F> {
    /// All labels of the system.
    pub labels: Vec<Label>,
    /// Predecessors of each label under the flow relation.
    pub preds: BTreeMap<Label, Vec<Label>>,
    /// How predecessor exits are combined into an entry value.
    pub combine: Combine,
    /// Extra facts (`ι`) unioned into the entry of selected labels.
    pub iota: BTreeMap<Label, BTreeSet<F>>,
    /// Entries forced to a fixed value regardless of predecessors (used for
    /// the isolated-entry treatment of the under-approximation).
    pub forced_entry: BTreeMap<Label, BTreeSet<F>>,
    /// Kill set of each label.
    pub kill: BTreeMap<Label, BTreeSet<F>>,
    /// Gen set of each label.
    pub gen: BTreeMap<Label, BTreeSet<F>>,
}

impl<F: Ord + Clone> Default for Equations<F> {
    fn default() -> Self {
        Equations {
            labels: Vec::new(),
            preds: BTreeMap::new(),
            combine: Combine::Union,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::new(),
        }
    }
}

/// The least solution of an equation system: entry and exit set per label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution<F: Ord> {
    /// Facts holding at the entry of each label.
    pub entry: BTreeMap<Label, BTreeSet<F>>,
    /// Facts holding at the exit of each label.
    pub exit: BTreeMap<Label, BTreeSet<F>>,
}

impl<F: Ord + Clone> Solution<F> {
    /// The entry set of `l` (empty if the label is unknown).  Prefer
    /// [`Solution::entry_ref`] on hot paths: this accessor clones the set.
    pub fn entry_of(&self, l: Label) -> BTreeSet<F> {
        self.entry.get(&l).cloned().unwrap_or_default()
    }

    /// The exit set of `l` (empty if the label is unknown).  Prefer
    /// [`Solution::exit_ref`] on hot paths: this accessor clones the set.
    pub fn exit_of(&self, l: Label) -> BTreeSet<F> {
        self.exit.get(&l).cloned().unwrap_or_default()
    }

    /// Borrowed entry set of `l`, or `None` if the label is unknown.
    pub fn entry_ref(&self, l: Label) -> Option<&BTreeSet<F>> {
        self.entry.get(&l)
    }

    /// Borrowed exit set of `l`, or `None` if the label is unknown.
    pub fn exit_ref(&self, l: Label) -> Option<&BTreeSet<F>> {
        self.exit.get(&l)
    }
}

/// Computes the least solution of `eq` by worklist iteration from the empty
/// assignment.  All transfer functions of the framework are monotone, so the
/// iteration converges to the least fixed point.
///
/// The working sets are hashed ([`HashSet`]) for cheap membership tests and
/// equality-of-size change detection; the final [`Solution`] is converted to
/// ordered sets so downstream consumers keep deterministic iteration order.
pub fn solve<F: Ord + Hash + Clone>(eq: &Equations<F>) -> Solution<F> {
    let empty: HashSet<F> = HashSet::new();
    let mut entry: HashMap<Label, HashSet<F>> =
        eq.labels.iter().map(|l| (*l, HashSet::new())).collect();
    let mut exit: HashMap<Label, HashSet<F>> =
        eq.labels.iter().map(|l| (*l, HashSet::new())).collect();

    // Successor map for worklist propagation.
    let mut succs: HashMap<Label, Vec<Label>> = HashMap::new();
    for (l, ps) in &eq.preds {
        for p in ps {
            succs.entry(*p).or_default().push(*l);
        }
    }

    let mut worklist: VecDeque<Label> = eq.labels.iter().copied().collect();
    let mut queued: HashSet<Label> = eq.labels.iter().copied().collect();

    while let Some(l) = worklist.pop_front() {
        queued.remove(&l);

        let new_entry = if let Some(forced) = eq.forced_entry.get(&l) {
            forced.iter().cloned().collect()
        } else {
            let preds = eq.preds.get(&l).map(Vec::as_slice).unwrap_or(&[]);
            let mut combined: HashSet<F> = match eq.combine {
                Combine::Union => {
                    let mut acc = HashSet::new();
                    for p in preds {
                        acc.extend(exit.get(p).unwrap_or(&empty).iter().cloned());
                    }
                    acc
                }
                Combine::IntersectDotted => {
                    // ⋂̇ ∅ = ∅
                    let mut iter = preds.iter();
                    match iter.next() {
                        None => HashSet::new(),
                        Some(first) => {
                            let mut acc = exit.get(first).cloned().unwrap_or_default();
                            for p in iter {
                                let other = exit.get(p).unwrap_or(&empty);
                                acc.retain(|f| other.contains(f));
                            }
                            acc
                        }
                    }
                }
            };
            if let Some(iota) = eq.iota.get(&l) {
                combined.extend(iota.iter().cloned());
            }
            combined
        };

        let kill = eq.kill.get(&l);
        let gen = eq.gen.get(&l);
        let mut new_exit: HashSet<F> = new_entry
            .iter()
            .filter(|f| kill.is_none_or(|k| !k.contains(*f)))
            .cloned()
            .collect();
        if let Some(gen) = gen {
            new_exit.extend(gen.iter().cloned());
        }

        let entry_changed = entry.get(&l) != Some(&new_entry);
        let exit_changed = exit.get(&l) != Some(&new_exit);
        if entry_changed {
            entry.insert(l, new_entry);
        }
        if exit_changed {
            exit.insert(l, new_exit);
            for s in succs.get(&l).map(Vec::as_slice).unwrap_or(&[]) {
                if queued.insert(*s) {
                    worklist.push_back(*s);
                }
            }
        }
    }

    let ordered = |m: HashMap<Label, HashSet<F>>| -> BTreeMap<Label, BTreeSet<F>> {
        m.into_iter()
            .map(|(l, s)| (l, s.into_iter().collect()))
            .collect()
    };
    Solution {
        entry: ordered(entry),
        exit: ordered(exit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(combine: Combine) -> Equations<&'static str> {
        // 1 -> 2 -> 3 with a gen at each label.
        Equations {
            labels: vec![1, 2, 3],
            preds: BTreeMap::from([(2, vec![1]), (3, vec![2])]),
            combine,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([
                (1, BTreeSet::from(["a"])),
                (2, BTreeSet::from(["b"])),
                (3, BTreeSet::from(["c"])),
            ]),
        }
    }

    #[test]
    fn union_accumulates_along_flow() {
        let sol = solve(&straight_line(Combine::Union));
        assert_eq!(sol.entry_of(3), BTreeSet::from(["a", "b"]));
        assert_eq!(sol.exit_of(3), BTreeSet::from(["a", "b", "c"]));
    }

    #[test]
    fn kill_removes_facts() {
        let mut eq = straight_line(Combine::Union);
        eq.kill.insert(2, BTreeSet::from(["a"]));
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(3), BTreeSet::from(["b"]));
    }

    #[test]
    fn dotted_intersection_of_branches() {
        // Diamond: 1 -> 2, 1 -> 3, {2,3} -> 4; gen "x" only on 2.
        let eq = Equations {
            labels: vec![1, 2, 3, 4],
            preds: BTreeMap::from([(2, vec![1]), (3, vec![1]), (4, vec![2, 3])]),
            combine: Combine::IntersectDotted,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([(2, BTreeSet::from(["x"])), (3, BTreeSet::from(["y"]))]),
        };
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(4), BTreeSet::new());
        // If both branches generate the same fact it must survive.
        let mut eq2 = eq.clone();
        eq2.gen.insert(3, BTreeSet::from(["x"]));
        let sol2 = solve(&eq2);
        assert_eq!(sol2.entry_of(4), BTreeSet::from(["x"]));
    }

    #[test]
    fn dotted_intersection_over_no_predecessors_is_empty() {
        let eq: Equations<&str> = Equations {
            labels: vec![1],
            combine: Combine::IntersectDotted,
            ..Default::default()
        };
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(1), BTreeSet::new());
    }

    #[test]
    fn forced_entry_overrides_predecessors() {
        let mut eq = straight_line(Combine::Union);
        eq.forced_entry.insert(2, BTreeSet::from(["forced"]));
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(2), BTreeSet::from(["forced"]));
        assert_eq!(sol.entry_of(3), BTreeSet::from(["forced", "b"]));
    }

    #[test]
    fn iota_adds_initial_facts() {
        let mut eq = straight_line(Combine::Union);
        eq.iota.insert(1, BTreeSet::from(["init"]));
        let sol = solve(&eq);
        assert!(sol.entry_of(1).contains("init"));
        assert!(sol.entry_of(3).contains("init"));
    }

    #[test]
    fn loops_reach_fixpoint() {
        // 1 -> 2 -> 1 cycle with gen at 2; union analysis must terminate and
        // propagate around the cycle.
        let eq = Equations {
            labels: vec![1, 2],
            preds: BTreeMap::from([(1, vec![2]), (2, vec![1])]),
            combine: Combine::Union,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([(2, BTreeSet::from(["x"]))]),
        };
        let sol = solve(&eq);
        assert!(sol.entry_of(1).contains("x"));
    }

    #[test]
    fn unknown_label_queries_are_empty() {
        let sol = solve(&straight_line(Combine::Union));
        assert!(sol.entry_of(99).is_empty());
        assert!(sol.exit_of(99).is_empty());
    }
}
