//! A monotone-framework solver for forward data-flow equation systems over
//! powerset lattices, in the style of *Principles of Program Analysis*.
//!
//! Both Reaching Definitions analyses of the paper are instances: the
//! over-approximation combines predecessor information by union, the
//! under-approximation by the *dotted intersection* operator `⋂̇` of
//! Section 4.1 (`⋂̇ ∅ = ∅`), which keeps the least solution of the equation
//! system well-defined.
//!
//! ## Dense engine
//!
//! The solver works on an interned dense representation: every fact is
//! mapped to a `u32` id by a [`FactInterner`], per-label entry/exit values
//! are fixed-width bitset rows (`u64` words, [`crate::dense::BitMatrix`]),
//! and gen/kill sets are precomputed masks, so a transfer function is
//! `exit = (entry & !kill) | gen` evaluated word-wise.  The worklist
//! propagates only changed words: a union along an edge updates the exit row
//! in the same pass over exactly the words the entry row gained.
//!
//! Equation systems can be built two ways:
//!
//! * [`Equations`] — the set-based builder (facts in `BTreeSet`s).  [`solve`]
//!   lowers it to dense form internally.  A reference set-based solver over
//!   the same type is kept as a differential-testing oracle in
//!   `crate::setref` (behind the `setref` feature outside of tests).
//! * [`DenseEquations`] — the dense builder used by the hot analyses
//!   ([`crate::active`], [`crate::present`]): facts are interned once and
//!   gen/kill sets are pushed as id lists, so constructing the system never
//!   materialises fact sets.
//!
//! The least [`Solution`] stays dense and decodes rows back to `BTreeSet`s
//! lazily (memoised per label) through [`Solution::entry_ref`] /
//! [`Solution::exit_ref`]; [`Solution::entry_iter`] iterates borrowed facts
//! without materialising a set at all.

use crate::dense::{iter_ones, words_for, BitMatrix, FactInterner};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::Hash;
use std::sync::OnceLock;
use vhdl1_syntax::Label;

/// How information flowing from several predecessors is combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combine {
    /// May-analysis: union of predecessor exit sets.
    Union,
    /// Must-analysis: the dotted intersection `⋂̇` (`⋂̇ ∅ = ∅`).
    IntersectDotted,
}

/// A forward data-flow equation system over a powerset of facts `F`, in
/// set-based form.
///
/// This is the convenient builder: facts are collected into `BTreeSet`s and
/// [`solve`] interns them on the way into the dense engine.  Hot callers
/// construct a [`DenseEquations`] directly instead.
#[derive(Debug, Clone)]
pub struct Equations<F> {
    /// All labels of the system.
    pub labels: Vec<Label>,
    /// Predecessors of each label under the flow relation.
    pub preds: BTreeMap<Label, Vec<Label>>,
    /// How predecessor exits are combined into an entry value.
    pub combine: Combine,
    /// Extra facts (`ι`) unioned into the entry of selected labels.
    pub iota: BTreeMap<Label, BTreeSet<F>>,
    /// Entries forced to a fixed value regardless of predecessors (used for
    /// the isolated-entry treatment of the under-approximation).
    pub forced_entry: BTreeMap<Label, BTreeSet<F>>,
    /// Kill set of each label.
    pub kill: BTreeMap<Label, BTreeSet<F>>,
    /// Gen set of each label.
    pub gen: BTreeMap<Label, BTreeSet<F>>,
}

impl<F: Ord + Clone> Default for Equations<F> {
    fn default() -> Self {
        Equations {
            labels: Vec::new(),
            preds: BTreeMap::new(),
            combine: Combine::Union,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::new(),
        }
    }
}

/// A forward data-flow equation system in interned dense form.
///
/// Labels are added with [`DenseEquations::add_label`] (which returns the
/// label's row index), facts are interned to ids once, and gen/kill/ι sets
/// are sparse id lists that [`DenseEquations::solve`] turns into bitset
/// masks.  See the [module documentation](self) for how this fits together.
#[derive(Debug, Clone)]
pub struct DenseEquations<F> {
    combine: Combine,
    labels: Vec<Label>,
    index: HashMap<Label, usize>,
    preds: Vec<Vec<Label>>,
    gen: Vec<Vec<u32>>,
    kill: Vec<Vec<u32>>,
    iota: Vec<Vec<u32>>,
    forced: Vec<Option<Vec<u32>>>,
    interner: FactInterner<F>,
}

impl<F: Eq + Hash + Ord + Clone> DenseEquations<F> {
    /// Creates an empty system with the given combination operator.
    pub fn new(combine: Combine) -> Self {
        DenseEquations {
            combine,
            labels: Vec::new(),
            index: HashMap::new(),
            preds: Vec::new(),
            gen: Vec::new(),
            kill: Vec::new(),
            iota: Vec::new(),
            forced: Vec::new(),
            interner: FactInterner::new(),
        }
    }

    /// Adds a label with its predecessor list and returns its row index.
    /// Labels must be unique; predecessors may reference labels added later.
    pub fn add_label(&mut self, label: Label, preds: Vec<Label>) -> usize {
        debug_assert!(!self.index.contains_key(&label), "duplicate label {label}");
        let row = self.labels.len();
        self.labels.push(label);
        self.index.insert(label, row);
        self.preds.push(preds);
        self.gen.push(Vec::new());
        self.kill.push(Vec::new());
        self.iota.push(Vec::new());
        self.forced.push(None);
        row
    }

    /// The row index of `label`, if it has been added.
    pub fn row_of(&self, label: Label) -> Option<usize> {
        self.index.get(&label).copied()
    }

    /// Interns a fact, returning its dense id.
    pub fn intern(&mut self, fact: F) -> u32 {
        self.interner.intern(fact)
    }

    /// Interns a fact by reference (cloning only on first sight).
    pub fn intern_ref(&mut self, fact: &F) -> u32 {
        self.interner.intern_ref(fact)
    }

    /// Adds fact id `id` to the gen set of row `row`.
    pub fn push_gen(&mut self, row: usize, id: u32) {
        self.gen[row].push(id);
    }

    /// Adds fact id `id` to the kill set of row `row`.
    pub fn push_kill(&mut self, row: usize, id: u32) {
        self.kill[row].push(id);
    }

    /// Adds every id of `ids` to the kill set of row `row`.
    pub fn extend_kill(&mut self, row: usize, ids: &[u32]) {
        self.kill[row].extend_from_slice(ids);
    }

    /// Adds fact id `id` to the `ι` (initial facts) set of row `row`.
    pub fn push_iota(&mut self, row: usize, id: u32) {
        self.iota[row].push(id);
    }

    /// Forces the entry of row `row` to a fixed value (initially empty; add
    /// facts with [`DenseEquations::push_forced`]).  A forced entry ignores
    /// predecessors and `ι`.
    pub fn force_entry(&mut self, row: usize) {
        self.forced[row].get_or_insert_with(Vec::new);
    }

    /// Adds fact id `id` to the forced entry of row `row` (forcing it first
    /// if necessary).
    pub fn push_forced(&mut self, row: usize, id: u32) {
        self.forced[row].get_or_insert_with(Vec::new).push(id);
    }

    /// Computes the least solution of the system by worklist iteration from
    /// the empty assignment.  All transfer functions of the framework are
    /// monotone, so the iteration converges to the least fixed point.
    pub fn solve(self) -> Solution<F> {
        match self.solve_bounded(u64::MAX) {
            Ok(sol) => sol,
            Err(e) => unreachable!("unbounded solve cannot exhaust {e}"),
        }
    }

    /// [`DenseEquations::solve`] under a worklist-iteration budget: solving
    /// stops with [`SolveExhausted`] once `max_steps` labels have been popped
    /// off the worklist.  The step count is a deterministic function of the
    /// equation system, so the same system and budget always exhaust (or
    /// converge) identically.
    pub fn solve_bounded(self, max_steps: u64) -> Result<Solution<F>, SolveExhausted> {
        let n = self.labels.len();
        let nf = self.interner.len();
        let words = words_for(nf);

        let fill = |rows: &[Vec<u32>]| {
            let mut m = BitMatrix::zeroed(n, words);
            for (r, ids) in rows.iter().enumerate() {
                for &id in ids {
                    m.set(r, id);
                }
            }
            m
        };
        let gen = fill(&self.gen);
        let kill = fill(&self.kill);

        // Resolve predecessor labels to row indices and build the successor
        // lists used for worklist propagation.  A predecessor outside the
        // label set has a bottom-valued (empty) exit forever: under union it
        // contributes nothing and is dropped, under `⋂̇` it absorbs the whole
        // intersection, which `bottom_pred` records.
        let mut preds: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut bottom_pred: Vec<bool> = vec![false; n];
        for (r, ps) in self.preds.iter().enumerate() {
            let mut rows: Vec<usize> = Vec::with_capacity(ps.len());
            for p in ps {
                match self.index.get(p) {
                    Some(&row) => rows.push(row),
                    None => bottom_pred[r] = true,
                }
            }
            for &p in &rows {
                succs[p].push(r);
            }
            preds.push(rows);
        }

        // Initial assignment: entry = forced | ι, exit = (entry & !kill) | gen.
        let mut entry = BitMatrix::zeroed(n, words);
        let mut exit = BitMatrix::zeroed(n, words);
        for r in 0..n {
            match &self.forced[r] {
                Some(ids) => {
                    for &id in ids {
                        entry.set(r, id);
                    }
                }
                None => {
                    for &id in &self.iota[r] {
                        entry.set(r, id);
                    }
                }
            }
            let (e, k, g) = (entry.row(r), kill.row(r), gen.row(r));
            for w in 0..words {
                let x = (e[w] & !k[w]) | g[w];
                exit.row_mut(r)[w] = x;
            }
        }

        let mut worklist: VecDeque<usize> = (0..n).collect();
        let mut queued: Vec<bool> = vec![true; n];
        let mut steps: u64 = 0;
        macro_rules! charge_step {
            () => {
                steps += 1;
                if steps > max_steps {
                    return Err(SolveExhausted {
                        steps,
                        limit: max_steps,
                    });
                }
            };
        }

        match self.combine {
            // Producer-driven propagation: popping `r` pushes its exit row
            // into every successor, updating entry and exit together over
            // exactly the words that changed.
            Combine::Union => {
                let mut src = vec![0u64; words];
                while let Some(r) = worklist.pop_front() {
                    charge_step!();
                    queued[r] = false;
                    src.copy_from_slice(exit.row(r));
                    for &s in &succs[r] {
                        if self.forced[s].is_some() {
                            continue;
                        }
                        let mut exit_changed = false;
                        let e = entry.row_mut(s);
                        let x = exit.row_mut(s);
                        let (k, g) = (kill.row(s), gen.row(s));
                        for (w, &sw) in src.iter().enumerate() {
                            let ne = e[w] | sw;
                            if ne != e[w] {
                                e[w] = ne;
                                let nx = (ne & !k[w]) | g[w];
                                if nx != x[w] {
                                    x[w] = nx;
                                    exit_changed = true;
                                }
                            }
                        }
                        if exit_changed && !queued[s] {
                            queued[s] = true;
                            worklist.push_back(s);
                        }
                    }
                }
            }
            // Consumer-driven recomputation: popping `r` rebuilds its entry
            // as the dotted intersection of all predecessor exits.  Exits
            // only ever grow, so the intersection grows monotonically too.
            Combine::IntersectDotted => {
                let mut scratch = vec![0u64; words];
                while let Some(r) = worklist.pop_front() {
                    charge_step!();
                    queued[r] = false;
                    if self.forced[r].is_some() {
                        continue;
                    }
                    scratch.iter_mut().for_each(|w| *w = 0);
                    let ps = &preds[r];
                    if !bottom_pred[r] {
                        if let Some((&first, rest)) = ps.split_first() {
                            scratch.copy_from_slice(exit.row(first));
                            for &p in rest {
                                for (w, &pw) in exit.row(p).iter().enumerate() {
                                    scratch[w] &= pw;
                                }
                            }
                        }
                    }
                    for &id in &self.iota[r] {
                        scratch[(id / 64) as usize] |= 1u64 << (id % 64);
                    }
                    if scratch.as_slice() != entry.row(r) {
                        entry.row_mut(r).copy_from_slice(&scratch);
                    }
                    let mut exit_changed = false;
                    let (k, g) = (kill.row(r), gen.row(r));
                    for w in 0..words {
                        let x = (scratch[w] & !k[w]) | g[w];
                        if exit.row(r)[w] != x {
                            exit.row_mut(r)[w] = x;
                            exit_changed = true;
                        }
                    }
                    if exit_changed {
                        for &s in &succs[r] {
                            if !queued[s] {
                                queued[s] = true;
                                worklist.push_back(s);
                            }
                        }
                    }
                }
            }
        }

        let index: HashMap<Label, usize> = self.index;
        Ok(Solution {
            labels: self.labels,
            index,
            facts: self.interner.into_facts(),
            entry,
            exit,
            entry_sets: (0..n).map(|_| OnceLock::new()).collect(),
            exit_sets: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }
}

/// A bounded solve ([`DenseEquations::solve_bounded`]) gave up: the worklist
/// iteration hit its step budget before reaching the fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveExhausted {
    /// Worklist pops performed when the solver gave up (`limit + 1`).
    pub steps: u64,
    /// The configured step budget.
    pub limit: u64,
}

impl std::fmt::Display for SolveExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dataflow worklist budget exhausted: {} steps, limit {}",
            self.steps, self.limit
        )
    }
}

impl std::error::Error for SolveExhausted {}

/// The least solution of an equation system: entry and exit set per label.
///
/// The solution is stored densely (bitset rows over interned fact ids) and
/// decodes to `BTreeSet`s lazily: [`Solution::entry_ref`] memoises the
/// decoded set per label, [`Solution::entry_iter`] yields borrowed facts
/// without building a set at all.
#[derive(Debug, Clone)]
pub struct Solution<F: Ord> {
    labels: Vec<Label>,
    index: HashMap<Label, usize>,
    facts: Vec<F>,
    entry: BitMatrix,
    exit: BitMatrix,
    entry_sets: Vec<OnceLock<BTreeSet<F>>>,
    exit_sets: Vec<OnceLock<BTreeSet<F>>>,
}

impl<F: Ord + Clone> Solution<F> {
    /// An all-empty solution over the given labels (used by analysis
    /// ablations that skip a phase entirely).
    pub fn empty_for(labels: impl IntoIterator<Item = Label>) -> Solution<F> {
        let labels: Vec<Label> = labels.into_iter().collect();
        let n = labels.len();
        let index = labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        Solution {
            labels,
            index,
            facts: Vec::new(),

            entry: BitMatrix::zeroed(n, 0),
            exit: BitMatrix::zeroed(n, 0),
            entry_sets: (0..n).map(|_| OnceLock::new()).collect(),
            exit_sets: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The labels of the solution, in insertion order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of distinct facts of the underlying system.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// The entry set of `l` (empty if the label is unknown).  Prefer
    /// [`Solution::entry_ref`] or [`Solution::entry_iter`] on hot paths:
    /// this accessor clones the decoded set.
    pub fn entry_of(&self, l: Label) -> BTreeSet<F> {
        self.entry_ref(l).cloned().unwrap_or_default()
    }

    /// The exit set of `l` (empty if the label is unknown).  Prefer
    /// [`Solution::exit_ref`] or [`Solution::exit_iter`] on hot paths: this
    /// accessor clones the decoded set.
    pub fn exit_of(&self, l: Label) -> BTreeSet<F> {
        self.exit_ref(l).cloned().unwrap_or_default()
    }

    /// Borrowed entry set of `l`, or `None` if the label is unknown.  The
    /// row is decoded on first access and memoised.
    pub fn entry_ref(&self, l: Label) -> Option<&BTreeSet<F>> {
        let &r = self.index.get(&l)?;
        Some(self.entry_sets[r].get_or_init(|| self.decode(self.entry.row(r))))
    }

    /// Borrowed exit set of `l`, or `None` if the label is unknown.  The row
    /// is decoded on first access and memoised.
    pub fn exit_ref(&self, l: Label) -> Option<&BTreeSet<F>> {
        let &r = self.index.get(&l)?;
        Some(self.exit_sets[r].get_or_init(|| self.decode(self.exit.row(r))))
    }

    /// Iterates the facts at the entry of `l` (empty if the label is
    /// unknown) without materialising a set.
    pub fn entry_iter(&self, l: Label) -> impl Iterator<Item = &F> + '_ {
        let row = self.index.get(&l).map(|&r| self.entry.row(r));
        iter_ones(row.unwrap_or(&[])).map(move |id| &self.facts[id as usize])
    }

    /// Iterates the facts at the exit of `l` (empty if the label is unknown)
    /// without materialising a set.
    pub fn exit_iter(&self, l: Label) -> impl Iterator<Item = &F> + '_ {
        let row = self.index.get(&l).map(|&r| self.exit.row(r));
        iter_ones(row.unwrap_or(&[])).map(move |id| &self.facts[id as usize])
    }

    /// Whether `fact` holds at the entry of `l` (via the memoised decoded
    /// set, so repeated probes on the same label are `O(log n)`).
    pub fn entry_contains(&self, l: Label, fact: &F) -> bool {
        self.entry_ref(l).is_some_and(|set| set.contains(fact))
    }

    fn decode(&self, row: &[u64]) -> BTreeSet<F> {
        iter_ones(row)
            .map(|id| self.facts[id as usize].clone())
            .collect()
    }

    /// Builds a solution directly from per-label entry/exit sets — the
    /// canonical constructor incremental callers rehydrate cached rows with.
    /// The fact universe is the union of every set, interned in sorted
    /// order, so two calls with equal rows produce structurally equal
    /// solutions regardless of where the rows came from.
    pub fn from_rows(rows: Vec<(Label, BTreeSet<F>, BTreeSet<F>)>) -> Solution<F> {
        let mut universe: BTreeSet<F> = BTreeSet::new();
        for (_, en, ex) in &rows {
            universe.extend(en.iter().cloned());
            universe.extend(ex.iter().cloned());
        }
        let facts: Vec<F> = universe.into_iter().collect();
        let n = rows.len();
        let words = words_for(facts.len());
        let mut entry = BitMatrix::zeroed(n, words);
        let mut exit = BitMatrix::zeroed(n, words);
        let mut labels = Vec::with_capacity(n);
        let mut index = HashMap::with_capacity(n);
        for (r, (l, en, ex)) in rows.iter().enumerate() {
            labels.push(*l);
            index.insert(*l, r);
            for f in en {
                let id = facts.binary_search(f).expect("fact is in the universe");
                entry.set(r, id as u32);
            }
            for f in ex {
                let id = facts.binary_search(f).expect("fact is in the universe");
                exit.set(r, id as u32);
            }
        }
        Solution {
            labels,
            index,
            facts,
            entry,
            exit,
            entry_sets: (0..n).map(|_| OnceLock::new()).collect(),
            exit_sets: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Concatenates solutions over **disjoint** label sets into one (labels
    /// are globally unique across a design's processes, so per-process
    /// solutions concatenate losslessly).  When the underlying equation
    /// systems couple nothing across parts — as the per-process analyses
    /// here do — the result equals the solution of the combined system.
    pub fn concat(parts: impl IntoIterator<Item = Solution<F>>) -> Solution<F> {
        let mut rows = Vec::new();
        for part in parts {
            for i in 0..part.labels.len() {
                let l = part.labels[i];
                rows.push((l, part.entry_of(l), part.exit_of(l)));
            }
        }
        Solution::from_rows(rows)
    }
}

impl<F: Ord + Clone> PartialEq for Solution<F> {
    fn eq(&self, other: &Self) -> bool {
        if self.index.len() != other.index.len() {
            return false;
        }
        self.labels.iter().all(|&l| {
            other.index.contains_key(&l)
                && self.entry_ref(l) == other.entry_ref(l)
                && self.exit_ref(l) == other.exit_ref(l)
        })
    }
}

impl<F: Ord + Clone> Eq for Solution<F> {}

/// Computes the least solution of `eq` by lowering the set-based system into
/// the dense engine (see [`DenseEquations::solve`]).
///
/// # Examples
///
/// A three-label chain `1 → 2 → 3` where label 2 kills the fact generated at
/// label 1:
///
/// ```
/// use std::collections::{BTreeMap, BTreeSet};
/// use vhdl1_dataflow::{solve, Combine, Equations};
///
/// let eq = Equations {
///     labels: vec![1, 2, 3],
///     preds: BTreeMap::from([(2, vec![1]), (3, vec![2])]),
///     combine: Combine::Union,
///     kill: BTreeMap::from([(2, BTreeSet::from(["a"]))]),
///     gen: BTreeMap::from([
///         (1, BTreeSet::from(["a"])),
///         (2, BTreeSet::from(["b"])),
///     ]),
///     ..Default::default()
/// };
/// let sol = solve(&eq);
/// assert_eq!(sol.entry_of(2), BTreeSet::from(["a"]));
/// assert_eq!(sol.entry_of(3), BTreeSet::from(["b"]));
/// ```
pub fn solve<F: Ord + Hash + Clone>(eq: &Equations<F>) -> Solution<F> {
    let mut dense = DenseEquations::new(eq.combine);
    for &l in &eq.labels {
        let row = dense.add_label(l, eq.preds.get(&l).cloned().unwrap_or_default());
        if let Some(facts) = eq.iota.get(&l) {
            for f in facts {
                let id = dense.intern_ref(f);
                dense.push_iota(row, id);
            }
        }
        if let Some(facts) = eq.forced_entry.get(&l) {
            dense.force_entry(row);
            for f in facts {
                let id = dense.intern_ref(f);
                dense.push_forced(row, id);
            }
        }
        if let Some(facts) = eq.kill.get(&l) {
            for f in facts {
                let id = dense.intern_ref(f);
                dense.push_kill(row, id);
            }
        }
        if let Some(facts) = eq.gen.get(&l) {
            for f in facts {
                let id = dense.intern_ref(f);
                dense.push_gen(row, id);
            }
        }
    }
    dense.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(combine: Combine) -> Equations<&'static str> {
        // 1 -> 2 -> 3 with a gen at each label.
        Equations {
            labels: vec![1, 2, 3],
            preds: BTreeMap::from([(2, vec![1]), (3, vec![2])]),
            combine,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([
                (1, BTreeSet::from(["a"])),
                (2, BTreeSet::from(["b"])),
                (3, BTreeSet::from(["c"])),
            ]),
        }
    }

    #[test]
    fn union_accumulates_along_flow() {
        let sol = solve(&straight_line(Combine::Union));
        assert_eq!(sol.entry_of(3), BTreeSet::from(["a", "b"]));
        assert_eq!(sol.exit_of(3), BTreeSet::from(["a", "b", "c"]));
    }

    #[test]
    fn kill_removes_facts() {
        let mut eq = straight_line(Combine::Union);
        eq.kill.insert(2, BTreeSet::from(["a"]));
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(3), BTreeSet::from(["b"]));
    }

    #[test]
    fn dotted_intersection_of_branches() {
        // Diamond: 1 -> 2, 1 -> 3, {2,3} -> 4; gen "x" only on 2.
        let eq = Equations {
            labels: vec![1, 2, 3, 4],
            preds: BTreeMap::from([(2, vec![1]), (3, vec![1]), (4, vec![2, 3])]),
            combine: Combine::IntersectDotted,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([(2, BTreeSet::from(["x"])), (3, BTreeSet::from(["y"]))]),
        };
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(4), BTreeSet::new());
        // If both branches generate the same fact it must survive.
        let mut eq2 = eq.clone();
        eq2.gen.insert(3, BTreeSet::from(["x"]));
        let sol2 = solve(&eq2);
        assert_eq!(sol2.entry_of(4), BTreeSet::from(["x"]));
    }

    #[test]
    fn dotted_intersection_over_no_predecessors_is_empty() {
        let eq: Equations<&str> = Equations {
            labels: vec![1],
            combine: Combine::IntersectDotted,
            ..Default::default()
        };
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(1), BTreeSet::new());
    }

    #[test]
    fn forced_entry_overrides_predecessors() {
        let mut eq = straight_line(Combine::Union);
        eq.forced_entry.insert(2, BTreeSet::from(["forced"]));
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(2), BTreeSet::from(["forced"]));
        assert_eq!(sol.entry_of(3), BTreeSet::from(["forced", "b"]));
    }

    #[test]
    fn iota_adds_initial_facts() {
        let mut eq = straight_line(Combine::Union);
        eq.iota.insert(1, BTreeSet::from(["init"]));
        let sol = solve(&eq);
        assert!(sol.entry_of(1).contains("init"));
        assert!(sol.entry_of(3).contains("init"));
    }

    #[test]
    fn loops_reach_fixpoint() {
        // 1 -> 2 -> 1 cycle with gen at 2; union analysis must terminate and
        // propagate around the cycle.
        let eq = Equations {
            labels: vec![1, 2],
            preds: BTreeMap::from([(1, vec![2]), (2, vec![1])]),
            combine: Combine::Union,
            iota: BTreeMap::new(),
            forced_entry: BTreeMap::new(),
            kill: BTreeMap::new(),
            gen: BTreeMap::from([(2, BTreeSet::from(["x"]))]),
        };
        let sol = solve(&eq);
        assert!(sol.entry_of(1).contains("x"));
    }

    #[test]
    fn self_loop_propagates_its_own_exit() {
        // A single label with a loop-back edge onto itself (a one-block
        // process body): its own gen must flow around into its entry.
        let eq = Equations {
            labels: vec![1],
            preds: BTreeMap::from([(1, vec![1])]),
            combine: Combine::Union,
            gen: BTreeMap::from([(1, BTreeSet::from(["x"]))]),
            ..Default::default()
        };
        let sol = solve(&eq);
        assert_eq!(sol.entry_of(1), BTreeSet::from(["x"]));
    }

    #[test]
    fn unknown_label_queries_are_empty() {
        let sol = solve(&straight_line(Combine::Union));
        assert!(sol.entry_of(99).is_empty());
        assert!(sol.exit_of(99).is_empty());
        assert!(sol.entry_ref(99).is_none());
        assert_eq!(sol.entry_iter(99).count(), 0);
        assert_eq!(sol.exit_iter(99).count(), 0);
    }

    #[test]
    fn iter_accessors_agree_with_sets() {
        let sol = solve(&straight_line(Combine::Union));
        for l in [1, 2, 3] {
            let via_iter: BTreeSet<&str> = sol.entry_iter(l).copied().collect();
            assert_eq!(via_iter, sol.entry_of(l));
            let via_iter: BTreeSet<&str> = sol.exit_iter(l).copied().collect();
            assert_eq!(via_iter, sol.exit_of(l));
        }
        assert!(sol.entry_contains(3, &"a"));
        assert!(!sol.entry_contains(3, &"c"));
        assert_eq!(sol.labels(), &[1, 2, 3]);
        assert_eq!(sol.fact_count(), 3);
    }

    #[test]
    fn solutions_compare_by_content_not_interning_order() {
        // Same system, facts interned in different orders (label order
        // reversed): the solutions must still compare equal.
        let eq = straight_line(Combine::Union);
        let mut reversed = eq.clone();
        reversed.labels.reverse();
        assert_eq!(solve(&eq), solve(&reversed));
        let mut other = eq.clone();
        other.gen.insert(3, BTreeSet::from(["different"]));
        assert_ne!(solve(&eq), solve(&other));
    }

    #[test]
    fn bounded_solve_exhausts_deterministically() {
        let lower = |eq: &Equations<&'static str>| {
            let mut dense = DenseEquations::new(eq.combine);
            for &l in &eq.labels {
                let row = dense.add_label(l, eq.preds.get(&l).cloned().unwrap_or_default());
                if let Some(facts) = eq.gen.get(&l) {
                    for f in facts {
                        let id = dense.intern_ref(f);
                        dense.push_gen(row, id);
                    }
                }
            }
            dense
        };
        let eq = straight_line(Combine::Union);
        // A generous budget converges to the same solution as `solve`.
        let sol = lower(&eq).solve_bounded(1_000).expect("converges");
        assert_eq!(sol.entry_of(3), BTreeSet::from(["a", "b"]));
        // A one-step budget exhausts, and always at the same point.
        let e1 = lower(&eq).solve_bounded(1).expect_err("exhausts");
        let e2 = lower(&eq).solve_bounded(1).expect_err("exhausts");
        assert_eq!(e1, e2);
        assert_eq!(e1.limit, 1);
        assert!(e1.steps > e1.limit);
        assert!(e1.to_string().contains("worklist budget exhausted"));
        // The must-analysis path charges the same budget.
        let mut must = eq.clone();
        must.combine = Combine::IntersectDotted;
        assert!(lower(&must).solve_bounded(1).is_err());
    }

    #[test]
    fn empty_solution_has_no_facts() {
        let sol: Solution<&str> = Solution::empty_for([1, 2]);
        assert_eq!(sol.entry_of(1), BTreeSet::new());
        assert_eq!(sol.exit_of(2), BTreeSet::new());
        assert!(sol.entry_ref(1).unwrap().is_empty());
        assert_eq!(sol.fact_count(), 0);
    }
}
