//! Interned dense fact representation for the monotone-framework solver.
//!
//! The Reaching Definitions analyses of the paper work over powersets of
//! small, heavily shared facts — `(name, label)` and `(name, definition)`
//! pairs.  Manipulating those powersets as `BTreeSet`s of owned pairs makes
//! every transfer function allocate and compare strings.  This module
//! provides the two ingredients of the dense alternative:
//!
//! * a [`FactInterner`] mapping each distinct fact to a dense `u32` id, and
//! * a [`BitMatrix`] holding one fixed-width bitset row of fact ids per
//!   label, so transfer functions become word-wise `and`/`or`/`and-not`
//!   operations over `u64` words.
//!
//! The solver in [`crate::framework`] builds on both; decoding back to the
//! `BTreeSet`-facing API happens lazily at the [`crate::framework::Solution`]
//! layer.

use std::collections::HashMap;
use std::hash::Hash;

/// Maps facts to dense `u32` ids and back.
///
/// Interning is append-only: ids are handed out in first-seen order and stay
/// stable for the lifetime of the interner, so a bitset row built against an
/// interner can always be decoded through [`FactInterner::resolve`].
#[derive(Debug, Clone, Default)]
pub struct FactInterner<F> {
    facts: Vec<F>,
    index: HashMap<F, u32>,
}

impl<F: Eq + Hash + Clone> FactInterner<F> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        FactInterner {
            facts: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Interns `fact`, returning its id (allocating a fresh id on first
    /// sight).
    pub fn intern(&mut self, fact: F) -> u32 {
        if let Some(&id) = self.index.get(&fact) {
            return id;
        }
        let id = self.facts.len() as u32;
        self.facts.push(fact.clone());
        self.index.insert(fact, id);
        id
    }

    /// Interns by reference, cloning `fact` only when it has not been seen
    /// before.
    pub fn intern_ref(&mut self, fact: &F) -> u32 {
        if let Some(&id) = self.index.get(fact) {
            return id;
        }
        let id = self.facts.len() as u32;
        self.facts.push(fact.clone());
        self.index.insert(fact.clone(), id);
        id
    }

    /// The id of `fact`, if it has been interned.
    pub fn lookup(&self, fact: &F) -> Option<u32> {
        self.index.get(fact).copied()
    }

    /// The fact behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &F {
        &self.facts[id as usize]
    }

    /// Number of distinct facts interned so far.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no fact has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Consumes the interner, returning the fact table in id order.
    pub fn into_facts(self) -> Vec<F> {
        self.facts
    }
}

/// Number of `u64` words needed to hold `nbits` bits.
pub(crate) fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(64)
}

/// A rectangular bit matrix: one fixed-width row of `u64` words per label.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix with `rows` rows of `words` words each.
    pub fn zeroed(rows: usize, words: usize) -> BitMatrix {
        BitMatrix {
            words,
            bits: vec![0; rows * words],
        }
    }

    /// Row width in words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Borrowed row `r`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Mutably borrowed row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Sets bit `bit` of row `r`.
    pub fn set(&mut self, r: usize, bit: u32) {
        self.bits[r * self.words + (bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    /// Whether bit `bit` of row `r` is set.
    pub fn contains(&self, r: usize, bit: u32) -> bool {
        self.bits[r * self.words + (bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Number of set bits in row `r`.
    pub fn count_row(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Iterates the indices of the set bits of a bitset row, in increasing
/// order.
pub fn iter_ones(row: &[u64]) -> OnesIter<'_> {
    OnesIter {
        row,
        word_idx: 0,
        current: row.first().copied().unwrap_or(0),
    }
}

/// Iterator over the set bits of a bitset row (see [`iter_ones`]).
#[derive(Debug, Clone)]
pub struct OnesIter<'a> {
    row: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.row.len() {
                return None;
            }
            self.current = self.row[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trips() {
        let mut i: FactInterner<(&str, u32)> = FactInterner::new();
        let a = i.intern(("x", 1));
        let b = i.intern(("y", 2));
        assert_eq!(i.intern(("x", 1)), a);
        assert_eq!(i.intern_ref(&("y", 2)), b);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), &("x", 1));
        assert_eq!(i.lookup(&("y", 2)), Some(b));
        assert_eq!(i.lookup(&("z", 3)), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        assert_eq!(i.into_facts(), vec![("x", 1), ("y", 2)]);
    }

    #[test]
    fn bit_matrix_set_and_query() {
        let mut m = BitMatrix::zeroed(2, 2);
        m.set(0, 3);
        m.set(0, 64);
        m.set(1, 127);
        assert!(m.contains(0, 3));
        assert!(m.contains(0, 64));
        assert!(!m.contains(0, 127));
        assert!(m.contains(1, 127));
        assert_eq!(m.count_row(0), 2);
        assert_eq!(m.count_row(1), 1);
        assert_eq!(iter_ones(m.row(0)).collect::<Vec<_>>(), vec![3, 64]);
        assert_eq!(iter_ones(m.row(1)).collect::<Vec<_>>(), vec![127]);
    }

    #[test]
    fn empty_rows_iterate_nothing() {
        let m = BitMatrix::zeroed(1, 3);
        assert_eq!(iter_ones(m.row(0)).count(), 0);
        assert_eq!(iter_ones(&[]).count(), 0);
    }

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }
}
