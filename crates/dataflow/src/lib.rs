//! # `vhdl1-dataflow` — Reaching Definitions analyses for VHDL1
//!
//! This crate implements Section 4 of *Information Flow Analysis for VHDL*
//! (Tolstrup, Nielson & Nielson, PaCT 2005):
//!
//! * control-flow graphs of process bodies ([`mod@cfg`]),
//! * the cross-flow relation `cf` over synchronisation points ([`crossflow`]),
//! * a generic monotone-framework solver ([`framework`]),
//! * the Reaching Definitions analysis for **active** signal values with its
//!   over- and under-approximations ([`active`], Table 4),
//! * the Reaching Definitions analysis for local variables and **present**
//!   signal values ([`present`], Table 5).
//!
//! ```
//! use vhdl1_dataflow::{ReachingDefinitions, RdOptions};
//!
//! let design = vhdl1_syntax::frontend(
//!     "entity e is port(a : in std_logic; b : out std_logic); end e;
//!      architecture rtl of e is begin
//!        p : process begin b <= a; wait on a; end process p;
//!      end rtl;")?;
//! let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
//! assert!(rd.active.may_be_active_at(2).contains("b"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod cfg;
pub mod crossflow;
pub mod dense;
pub mod framework;
pub mod present;
#[cfg(any(test, feature = "setref"))]
pub mod setref;

pub use active::{
    active_signals_rd, active_signals_rd_bounded, active_signals_rd_process, ActiveRd, SigDef,
};
pub use cfg::{BasicBlock, BlockKind, DesignCfg, ProcessCfg};
pub use crossflow::{CrossFlow, SyncSummary};
pub use dense::FactInterner;
pub use framework::{solve, Combine, DenseEquations, Equations, Solution, SolveExhausted};
pub use present::{present_rd, present_rd_bounded, Def, PresentRd, ResDef};

use serde::{Deserialize, Serialize};
use vhdl1_syntax::Design;

/// Options shared by the Reaching Definitions analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdOptions {
    /// Model each process as repeating indefinitely (`null; while '1' do ss`,
    /// Section 3.2) by adding loop-back edges.  Disable to analyse the
    /// straight-line illustration programs of Figures 3 and 4 exactly as the
    /// paper presents them.
    pub process_repeats: bool,
    /// Use the under-approximation `RD∩ϕ` to kill present-value definitions
    /// at synchronisation points (Table 5).  Disabling this is the ablation
    /// discussed in DESIGN.md: every wait-definition of a signal survives.
    pub use_under_approximation: bool,
    /// Additionally kill the initial-value definition `(s, ?)` at a wait when
    /// `s` is guaranteed to be re-synchronised.  The paper's Table 5 keeps the
    /// `?` definition; this switch explores the (more aggressive) variant.
    pub kill_initial_at_wait: bool,
}

impl Default for RdOptions {
    fn default() -> Self {
        RdOptions {
            process_repeats: true,
            use_under_approximation: true,
            kill_initial_at_wait: false,
        }
    }
}

/// Bundle of every artefact of the Reaching Definitions phase, computed in
/// the order mandated by the paper (active signals first, then present
/// values).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachingDefinitions {
    /// The options the analyses were run with.
    pub options: RdOptions,
    /// Control-flow graphs of every process.
    pub cfg: DesignCfg,
    /// The cross-flow relation over wait statements.
    pub cross: CrossFlow,
    /// Reaching Definitions for active signal values (Table 4).
    pub active: ActiveRd,
    /// Reaching Definitions for variables and present signal values (Table 5).
    pub present: PresentRd,
}

impl ReachingDefinitions {
    /// Computes all Reaching Definitions artefacts for `design`.
    pub fn compute(design: &Design, options: &RdOptions) -> ReachingDefinitions {
        match ReachingDefinitions::compute_bounded(design, options, u64::MAX) {
            Ok(rd) => rd,
            Err(e) => unreachable!("unbounded solve cannot exhaust: {e}"),
        }
    }

    /// [`ReachingDefinitions::compute`] under a worklist step budget: each of
    /// the three fixpoint solves (active over, active under, present) may take
    /// up to `max_steps` worklist iterations.
    ///
    /// # Errors
    ///
    /// Returns [`SolveExhausted`] if any fixpoint fails to converge within
    /// the budget.
    pub fn compute_bounded(
        design: &Design,
        options: &RdOptions,
        max_steps: u64,
    ) -> Result<ReachingDefinitions, SolveExhausted> {
        let cfg = DesignCfg::build(design);
        let cross = CrossFlow::build(design);
        let active = active_signals_rd_bounded(design, &cfg, options, max_steps)?;
        let present = present_rd_bounded(design, &cfg, &cross, &active, options, max_steps)?;
        Ok(ReachingDefinitions {
            options: *options,
            cfg,
            cross,
            active,
            present,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bundles_all_phases() {
        let design = vhdl1_syntax::frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process begin b <= a; wait on a; end process p;
             end rtl;",
        )
        .unwrap();
        let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
        assert_eq!(rd.cfg.processes.len(), 1);
        assert!(rd.cross.is_nonempty());
        assert!(rd.active.may_be_active_at(2).contains("b"));
        assert!(rd
            .present
            .definitions_reaching(1, "a")
            .contains(&present::Def::Init));
    }

    #[test]
    fn default_options_are_paper_faithful() {
        let o = RdOptions::default();
        assert!(o.process_repeats);
        assert!(o.use_under_approximation);
        assert!(!o.kill_initial_at_wait);
    }
}
