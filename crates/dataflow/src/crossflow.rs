//! The cross-flow relation `cf` of Section 4.
//!
//! `cf` is the Cartesian product of the sets of `wait`-statement labels of
//! every process of the program: a tuple `(l_1, ..., l_n) ∈ cf` describes one
//! possible synchronisation, with process `j` suspended at its wait label
//! `l_j`.  The analyses only ever need three queries, all of which are
//! answered without materialising the (exponentially large) product:
//!
//! * is a label part of *some* synchronisation (`∃ l⃗ ∈ cf : l occurs in l⃗`)?
//! * can two labels be part of the *same* synchronisation?
//! * iterate over the wait labels of every other process.

use crate::active::ActiveRd;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::{Design, Ident, Label};

/// The cross-flow relation of a design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossFlow {
    /// Wait labels per process, in process order.
    pub wait_labels: Vec<Vec<Label>>,
    /// Owner process of each wait label.
    owner: BTreeMap<Label, usize>,
}

impl CrossFlow {
    /// Builds the cross-flow relation of `design`.
    pub fn build(design: &Design) -> CrossFlow {
        let wait_labels: Vec<Vec<Label>> = (0..design.processes.len())
            .map(|i| design.wait_labels(i))
            .collect();
        let mut owner = BTreeMap::new();
        for (i, labels) in wait_labels.iter().enumerate() {
            for l in labels {
                owner.insert(*l, i);
            }
        }
        CrossFlow { wait_labels, owner }
    }

    /// Whether `cf` is non-empty, i.e. every process has at least one wait
    /// statement.  If some process never synchronises the Cartesian product
    /// is empty and no synchronisation tuple exists.
    pub fn is_nonempty(&self) -> bool {
        !self.wait_labels.is_empty() && self.wait_labels.iter().all(|w| !w.is_empty())
    }

    /// The process owning the wait label `l`, if `l` is a wait label.
    pub fn owner_of(&self, l: Label) -> Option<usize> {
        self.owner.get(&l).copied()
    }

    /// `∃ l⃗ ∈ cf` such that `l` occurs in `l⃗` (side condition of Table 7).
    pub fn occurs_in_some_tuple(&self, l: Label) -> bool {
        self.is_nonempty() && self.owner.contains_key(&l)
    }

    /// `∃ l⃗ ∈ cf` such that both `l1` and `l2` occur in `l⃗` (side condition
    /// of Table 8).  Two wait labels can co-occur exactly when they belong to
    /// different processes, or are the same label.
    pub fn co_occur(&self, l1: Label, l2: Label) -> bool {
        if !self.is_nonempty() {
            return false;
        }
        match (self.owner.get(&l1), self.owner.get(&l2)) {
            (Some(p1), Some(p2)) => p1 != p2 || l1 == l2,
            _ => false,
        }
    }

    /// Wait labels of every process other than `pidx`.
    pub fn other_wait_labels(&self, pidx: usize) -> impl Iterator<Item = (usize, Label)> + '_ {
        self.wait_labels
            .iter()
            .enumerate()
            .filter(move |(j, _)| *j != pidx)
            .flat_map(|(j, ls)| ls.iter().map(move |l| (j, *l)))
    }

    /// The number of synchronisation tuples `|cf|` (product of per-process
    /// wait counts).  Only used for reporting; saturates at `u64::MAX`.
    pub fn tuple_count(&self) -> u64 {
        self.wait_labels
            .iter()
            .map(|w| w.len() as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n))
            .unwrap_or(u64::MAX)
    }

    /// Materialises the synchronisation tuples.  Intended for tests and small
    /// designs only; the number of tuples is the product of the per-process
    /// wait counts.
    pub fn tuples(&self) -> Vec<Vec<Label>> {
        if !self.is_nonempty() {
            return Vec::new();
        }
        let mut out: Vec<Vec<Label>> = vec![Vec::new()];
        for labels in &self.wait_labels {
            let mut next = Vec::with_capacity(out.len() * labels.len());
            for prefix in &out {
                for l in labels {
                    let mut t = prefix.clone();
                    t.push(*l);
                    next.push(t);
                }
            }
            out = next;
        }
        out
    }
}

/// Per-process summaries of the active-signal analysis over the cross-flow
/// relation, precomputed once so the Table-5 wait transfer functions do not
/// re-aggregate other processes' wait labels per label.
///
/// For every process `j` the summary holds
///
/// * `may[j]  = ⋃_{l ∈ WS_j} fst(RD∪ϕentry(l))` — signals that may be active
///   at *some* wait of `j`, and
/// * `must[j] = ⋂_{l ∈ WS_j} fst(RD∩ϕentry(l))` — signals guaranteed active
///   at *every* wait of `j`,
///
/// which is exactly the per-process contribution of the synchronisation
/// side conditions of Table 5 (`cf` quantifies over every wait of every
/// other process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncSummary {
    may: Vec<BTreeSet<Ident>>,
    must: Vec<BTreeSet<Ident>>,
}

impl SyncSummary {
    /// Builds the per-process summaries from the cross-flow relation and the
    /// active-signal Reaching Definitions.
    pub fn build(cross: &CrossFlow, active: &ActiveRd) -> SyncSummary {
        let mut may = Vec::with_capacity(cross.wait_labels.len());
        let mut must = Vec::with_capacity(cross.wait_labels.len());
        for waits in &cross.wait_labels {
            let mut may_j: BTreeSet<Ident> = BTreeSet::new();
            for &l in waits {
                may_j.extend(active.may_be_active_at(l));
            }
            may.push(may_j);
            let mut iter = waits.iter();
            let must_j = match iter.next() {
                None => BTreeSet::new(),
                Some(&first) => {
                    let mut acc = active.must_be_active_at(first);
                    for &l in iter {
                        let other = active.must_be_active_at(l);
                        acc.retain(|s| other.contains(s));
                    }
                    acc
                }
            };
            must.push(must_j);
        }
        SyncSummary { may, must }
    }

    /// Signals that may be active at some wait of some process other than
    /// `pidx`.
    pub fn may_elsewhere(&self, pidx: usize) -> BTreeSet<Ident> {
        self.union_excluding(&self.may, pidx)
    }

    /// Signals guaranteed active at every wait of some process other than
    /// `pidx` (the union over other processes of their per-process
    /// intersections).
    pub fn must_elsewhere(&self, pidx: usize) -> BTreeSet<Ident> {
        self.union_excluding(&self.must, pidx)
    }

    fn union_excluding(&self, sets: &[BTreeSet<Ident>], pidx: usize) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        for (j, set) in sets.iter().enumerate() {
            if j != pidx {
                out.extend(set.iter().cloned());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::active_signals_rd;
    use crate::cfg::DesignCfg;
    use crate::RdOptions;
    use vhdl1_syntax::frontend;

    fn two_process_design() -> Design {
        frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; t <= a; wait on a, t; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
             end rtl;",
        )
        .unwrap()
    }

    #[test]
    fn wait_labels_partition_by_process() {
        let cf = CrossFlow::build(&two_process_design());
        assert_eq!(cf.wait_labels.len(), 2);
        assert_eq!(cf.wait_labels[0].len(), 2);
        assert_eq!(cf.wait_labels[1].len(), 1);
        assert!(cf.is_nonempty());
        assert_eq!(cf.tuple_count(), 2);
    }

    #[test]
    fn co_occurrence_requires_distinct_processes() {
        let cf = CrossFlow::build(&two_process_design());
        let p1_waits = cf.wait_labels[0].clone();
        let p2_wait = cf.wait_labels[1][0];
        assert!(cf.co_occur(p1_waits[0], p2_wait));
        assert!(!cf.co_occur(p1_waits[0], p1_waits[1]));
        assert!(cf.co_occur(p1_waits[0], p1_waits[0]));
        assert!(!cf.co_occur(p1_waits[0], 999));
    }

    #[test]
    fn tuples_enumerate_product() {
        let cf = CrossFlow::build(&two_process_design());
        let ts = cf.tuples();
        assert_eq!(ts.len(), 2);
        for t in &ts {
            assert_eq!(t.len(), 2);
        }
    }

    #[test]
    fn occurs_in_some_tuple_checks_wait_labels_only() {
        let d = two_process_design();
        let cf = CrossFlow::build(&d);
        for l in d.all_wait_labels() {
            assert!(cf.occurs_in_some_tuple(l));
        }
        assert!(!cf.occurs_in_some_tuple(1)); // label 1 is a signal assignment
    }

    #[test]
    fn other_wait_labels_excludes_own_process() {
        let cf = CrossFlow::build(&two_process_design());
        let others: Vec<(usize, Label)> = cf.other_wait_labels(0).collect();
        assert_eq!(others.len(), 1);
        assert_eq!(others[0].0, 1);
    }

    #[test]
    fn sync_summary_aggregates_per_process() {
        let d = two_process_design();
        let cf = CrossFlow::build(&d);
        let cfg = DesignCfg::build(&d);
        let active = active_signals_rd(&d, &cfg, &RdOptions::default());
        let summary = SyncSummary::build(&cf, &active);
        // p1 assigns t before each wait: t may be active at p1's waits, so
        // p2's view of "elsewhere" includes t.
        assert!(summary.may_elsewhere(1).contains("t"));
        // p1's own waits are excluded from its "elsewhere" view; only p2's
        // wait counts, and p2 assigns b (an out port).
        assert!(!summary.may_elsewhere(0).contains("t"));
        assert!(summary.may_elsewhere(0).contains("b"));
        // must_elsewhere matches the per-label aggregation done longhand.
        let mut expected = BTreeSet::new();
        let mut iter = cf.wait_labels[0].iter();
        let mut acc = active.must_be_active_at(*iter.next().unwrap());
        for l in iter {
            let other = active.must_be_active_at(*l);
            acc.retain(|s| other.contains(s));
        }
        expected.extend(acc);
        assert_eq!(summary.must_elsewhere(1), expected);
    }
}
