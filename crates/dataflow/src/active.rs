//! Reaching Definitions analysis for **active** signal values (Table 4).
//!
//! The analysis runs per process and tracks pairs `(s, l)` meaning "the
//! signal assignment at label `l` may (over-approximation `RD∪ϕ`) / must
//! (under-approximation `RD∩ϕ`) still be pending as the active value of `s`".
//!
//! * a signal assignment kills every other pending assignment to the same
//!   signal in the same process and generates its own pair;
//! * a `wait` statement synchronises all active values and therefore kills
//!   every pending assignment of the process.

use crate::cfg::{DesignCfg, ProcessCfg};
use crate::framework::{Combine, DenseEquations, Solution, SolveExhausted};
use crate::RdOptions;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::{Design, Ident, Label};

/// A pending signal definition: `(signal, label of the assignment)`.
pub type SigDef = (Ident, Label);

/// Result of the active-signal Reaching Definitions analysis for a whole
/// design (labels are globally unique, so the per-process solutions are
/// stored in a single label-indexed map).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveRd {
    /// The over-approximation `RD∪ϕ`.
    pub over: Solution<SigDef>,
    /// The under-approximation `RD∩ϕ`.
    pub under: Solution<SigDef>,
}

impl ActiveRd {
    /// Signals that *may* be active at the entry of label `l`
    /// (`fst(RD∪ϕentry(l))`).
    pub fn may_be_active_at(&self, l: Label) -> BTreeSet<Ident> {
        self.over.entry_iter(l).map(|(s, _)| s.clone()).collect()
    }

    /// Signals that *must* be active at the entry of label `l`
    /// (`fst(RD∩ϕentry(l))`).
    pub fn must_be_active_at(&self, l: Label) -> BTreeSet<Ident> {
        self.under.entry_iter(l).map(|(s, _)| s.clone()).collect()
    }

    /// Concatenates per-process results (in process order) into a
    /// whole-design result.  Labels are globally unique, so the parts are
    /// disjoint; because [`active_signals_rd`] couples nothing across
    /// processes, the concatenation equals the whole-design analysis.
    pub fn concat(parts: impl IntoIterator<Item = ActiveRd>) -> ActiveRd {
        let (overs, unders): (Vec<_>, Vec<_>) =
            parts.into_iter().map(|a| (a.over, a.under)).unzip();
        ActiveRd {
            over: Solution::concat(overs),
            under: Solution::concat(unders),
        }
    }
}

/// Runs the active-signal Reaching Definitions analysis (both approximations)
/// on every process of `design`.
pub fn active_signals_rd(design: &Design, cfg: &DesignCfg, options: &RdOptions) -> ActiveRd {
    match active_signals_rd_bounded(design, cfg, options, u64::MAX) {
        Ok(rd) => rd,
        Err(e) => unreachable!("unbounded solve cannot exhaust: {e}"),
    }
}

/// [`active_signals_rd`] under a per-solve worklist step budget (each of the
/// two approximations may take up to `max_steps` steps).
///
/// # Errors
///
/// Returns [`SolveExhausted`] if either fixpoint fails to converge within
/// `max_steps` worklist iterations.
pub fn active_signals_rd_bounded(
    design: &Design,
    cfg: &DesignCfg,
    options: &RdOptions,
    max_steps: u64,
) -> Result<ActiveRd, SolveExhausted> {
    let over = build_equations(design, cfg, options, Combine::Union).solve_bounded(max_steps)?;
    let under = if options.use_under_approximation {
        build_equations(design, cfg, options, Combine::IntersectDotted).solve_bounded(max_steps)?
    } else {
        // Ablation: pretend nothing is ever guaranteed to be active.
        Solution::empty_for(cfg.labels())
    };
    Ok(ActiveRd { over, under })
}

/// Runs the active-signal analysis on a **single** process — the per-unit
/// entry point the incremental engine caches results of.
/// The dataflow equations couple nothing across processes, so this is exactly
/// the restriction of the whole-design solution to this process's labels,
/// and [`ActiveRd::concat`] over every process reproduces
/// [`active_signals_rd`].
pub fn active_signals_rd_process(
    design: &Design,
    pcfg: &ProcessCfg,
    options: &RdOptions,
) -> ActiveRd {
    let cfg = DesignCfg {
        processes: vec![pcfg.clone()],
    };
    active_signals_rd(design, &cfg, options)
}

fn build_equations(
    design: &Design,
    cfg: &DesignCfg,
    options: &RdOptions,
    combine: Combine,
) -> DenseEquations<SigDef> {
    let mut eq: DenseEquations<SigDef> = DenseEquations::new(combine);
    for pcfg in &cfg.processes {
        let with_loop = options.process_repeats;

        // Intern every signal-assignment pair of the process once; the
        // per-signal lists drive the assignment kills, the flat list the
        // wait kill.
        let mut per_signal: BTreeMap<&Ident, Vec<(Label, u32)>> = BTreeMap::new();
        for (l, block) in &pcfg.blocks {
            if let Some(s) = block.kind.assigned_signal() {
                let id = eq.intern((s.clone(), *l));
                per_signal.entry(s).or_default().push((*l, id));
            }
        }
        let all_assignments: Vec<u32> = per_signal
            .values()
            .flat_map(|defs| defs.iter().map(|&(_, id)| id))
            .collect();

        let mut preds = pcfg.predecessor_map(with_loop);
        for (l, block) in &pcfg.blocks {
            let row = eq.add_label(*l, preds.remove(l).unwrap_or_default());
            match &block.kind {
                crate::cfg::BlockKind::SignalAssign { target, .. } => {
                    let defs = &per_signal[&target.name];
                    for &(_, id) in defs {
                        eq.push_kill(row, id);
                    }
                    let own = defs
                        .iter()
                        .find(|(l2, _)| l2 == l)
                        .expect("own assignment is in the per-signal list")
                        .1;
                    eq.push_gen(row, own);
                }
                crate::cfg::BlockKind::Wait { .. } => eq.extend_kill(row, &all_assignments),
                _ => {}
            }
        }
        // The under-approximation treats the initial label as isolated: on the
        // very first entry nothing is guaranteed to be active, and the dotted
        // intersection with that empty path keeps it empty forever.
        if combine == Combine::IntersectDotted {
            let init_row = eq.row_of(pcfg.init).expect("init label was added");
            eq.force_entry(init_row);
        }
        let _ = design; // the design is only needed for documentation symmetry
    }
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    fn setup(body: &str) -> (Design, DesignCfg) {
        let src = format!(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
               signal u : std_logic;
             begin
               p : process
                 variable x : std_logic;
               begin
                 {body}
               end process p;
             end rtl;"
        );
        let d = frontend(&src).unwrap();
        let cfg = DesignCfg::build(&d);
        (d, cfg)
    }

    fn run(body: &str) -> ActiveRd {
        let (d, cfg) = setup(body);
        active_signals_rd(&d, &cfg, &RdOptions::default())
    }

    #[test]
    fn assignment_reaches_following_wait() {
        // 1: t <= a; 2: wait
        let rd = run("t <= a; wait on a;");
        assert_eq!(rd.may_be_active_at(2), BTreeSet::from(["t".to_string()]));
        assert_eq!(rd.must_be_active_at(2), BTreeSet::from(["t".to_string()]));
        assert_eq!(rd.over.entry_of(2), BTreeSet::from([("t".to_string(), 1)]));
    }

    #[test]
    fn wait_kills_all_active_definitions() {
        // 1: t <= a; 2: wait; 3: u <= a; 4: wait
        let rd = run("t <= a; wait on a; u <= a; wait on a;");
        assert_eq!(rd.may_be_active_at(3), BTreeSet::new());
        assert_eq!(rd.may_be_active_at(4), BTreeSet::from(["u".to_string()]));
    }

    #[test]
    fn reassignment_kills_previous_definition_of_same_signal() {
        // 1: t <= a; 2: t <= b... use x (variable) to avoid port issue; 3: wait
        let rd = run("t <= a; t <= x; wait on a;");
        assert_eq!(rd.over.entry_of(3), BTreeSet::from([("t".to_string(), 2)]));
        assert_eq!(rd.under.entry_of(3), BTreeSet::from([("t".to_string(), 2)]));
    }

    #[test]
    fn branch_makes_definition_may_but_not_must() {
        // 1: if cond 2: t <= a else 3: null; 4: wait
        let rd = run("if a = '1' then t <= a; else null; end if; wait on a;");
        assert_eq!(rd.may_be_active_at(4), BTreeSet::from(["t".to_string()]));
        assert_eq!(rd.must_be_active_at(4), BTreeSet::new());
    }

    #[test]
    fn both_branches_assigning_intersect_per_definition() {
        let rd = run("if a = '1' then t <= a; else t <= x; end if; wait on a;");
        // Two distinct definitions may reach.
        assert_eq!(
            rd.over.entry_of(4),
            BTreeSet::from([("t".to_string(), 2), ("t".to_string(), 3)])
        );
        // The paper's under-approximation works over (signal, label) pairs, so
        // two different defining labels do not intersect: `t` is not reported
        // as guaranteed-active even though both branches assign it.  This is
        // the (sound, conservative) behaviour of Table 4.
        assert_eq!(rd.under.entry_of(4), BTreeSet::new());
        assert_eq!(rd.must_be_active_at(4), BTreeSet::new());
    }

    #[test]
    fn same_assignment_on_both_paths_is_must() {
        // The assignment before the conditional is on every path to the wait,
        // so its pair survives the intersection.
        let rd = run("t <= a; if a = '1' then x := a; else null; end if; wait on a;");
        assert_eq!(rd.must_be_active_at(5), BTreeSet::from(["t".to_string()]));
    }

    #[test]
    fn loop_back_makes_definitions_wrap_around_in_over_approximation() {
        // 1: t <= a; 2: wait -- after the wait the process restarts.
        let rd = run("t <= a; wait on a;");
        // Entry of label 1 on the second iteration comes from the wait, which
        // killed everything, so nothing is pending.
        assert_eq!(rd.may_be_active_at(1), BTreeSet::new());
        // Without the trailing wait the assignment wraps around:
        let rd2 = run("t <= a; u <= x; wait on a; null;");
        // label 4 is the null; label 1 receives the loop-back from 4.
        assert!(rd2.may_be_active_at(1).is_empty());
        assert_eq!(rd2.may_be_active_at(4), BTreeSet::new());
    }

    #[test]
    fn under_approximation_disabled_by_ablation_option() {
        let (d, cfg) = setup("t <= a; wait on a;");
        let rd = active_signals_rd(
            &d,
            &cfg,
            &RdOptions {
                use_under_approximation: false,
                ..Default::default()
            },
        );
        assert_eq!(rd.must_be_active_at(2), BTreeSet::new());
        assert_eq!(rd.may_be_active_at(2), BTreeSet::from(["t".to_string()]));
    }

    #[test]
    fn straight_line_mode_removes_loop_back() {
        let (d, cfg) = setup("t <= a; null; wait on a;");
        let rd = active_signals_rd(
            &d,
            &cfg,
            &RdOptions {
                process_repeats: false,
                ..Default::default()
            },
        );
        assert_eq!(rd.may_be_active_at(1), BTreeSet::new());
        assert_eq!(rd.may_be_active_at(2), BTreeSet::from(["t".to_string()]));
    }

    #[test]
    fn two_processes_do_not_interfere() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
             end rtl;";
        let d = frontend(src).unwrap();
        let cfg = DesignCfg::build(&d);
        let rd = active_signals_rd(&d, &cfg, &RdOptions::default());
        // Process 2's wait (label 4) sees only its own assignment to b.
        assert_eq!(rd.may_be_active_at(4), BTreeSet::from(["b".to_string()]));
        assert_eq!(rd.may_be_active_at(2), BTreeSet::from(["t".to_string()]));
    }

    #[test]
    fn per_process_concat_equals_whole_design_analysis() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; if a = '1' then t <= a; else null; end if;
                 wait on a; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
               p3 : process begin b <= a; b <= t; wait on a, t; end process p3;
             end rtl;";
        let d = frontend(src).unwrap();
        let cfg = DesignCfg::build(&d);
        for options in [
            RdOptions::default(),
            RdOptions {
                use_under_approximation: false,
                ..RdOptions::default()
            },
        ] {
            let whole = active_signals_rd(&d, &cfg, &options);
            let merged = ActiveRd::concat(
                cfg.processes
                    .iter()
                    .map(|p| active_signals_rd_process(&d, p, &options)),
            );
            assert_eq!(whole.over, merged.over);
            assert_eq!(whole.under, merged.under);
        }
    }
}
