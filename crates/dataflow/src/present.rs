//! Reaching Definitions analysis for local variables and **present** signal
//! values (Table 5).
//!
//! The analysis is a whole-program forward may-analysis over pairs
//! `(n, d)` where `n` is a variable or signal and `d` is either the label of
//! the defining block or the special marker `?` for the initial value.
//!
//! * variable assignments kill every other definition of the same variable
//!   (including `?`) and generate their own;
//! * `wait` statements are where signals obtain new *present* values: they
//!   generate `(s, l)` for every signal `s` that **may** be active in any
//!   process participating in the synchronisation (using `RD∪ϕ`), and kill
//!   previous present-value definitions of signals that **must** be active in
//!   some participating process (using `RD∩ϕ`) — the cross-flow relation `cf`
//!   determines which wait statements can synchronise.

use crate::active::ActiveRd;
use crate::cfg::{BlockKind, DesignCfg};
use crate::crossflow::{CrossFlow, SyncSummary};
use crate::framework::{Combine, DenseEquations, Solution, SolveExhausted};
use crate::RdOptions;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::{Design, Ident, Label};

/// Where a resource obtained its current value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Def {
    /// The special marker `?`: the initial value of the resource.
    Init,
    /// The definition made by the block with this label.
    At(Label),
}

impl std::fmt::Display for Def {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Def::Init => write!(f, "?"),
            Def::At(l) => write!(f, "{l}"),
        }
    }
}

/// A reaching definition of a variable or present signal value.
pub type ResDef = (Ident, Def);

/// Result of the Reaching Definitions analysis for local variables and
/// present signal values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PresentRd {
    /// Entry/exit sets per label (`RDcf_entry`, `RDcf_exit`).
    pub solution: Solution<ResDef>,
}

impl PresentRd {
    /// Definitions of `n` reaching the entry of `l`.
    pub fn definitions_reaching(&self, l: Label, n: &str) -> BTreeSet<Def> {
        self.entry_iter(l)
            .filter(|(name, _)| name == n)
            .map(|(_, d)| *d)
            .collect()
    }

    /// The full entry set at `l`.  Prefer [`PresentRd::entry_ref`] or
    /// [`PresentRd::entry_iter`] on hot paths: this accessor clones the set.
    pub fn entry_of(&self, l: Label) -> BTreeSet<ResDef> {
        self.solution.entry_of(l)
    }

    /// Borrowed entry set at `l`, or `None` if the label is unknown.  The
    /// underlying dense row is decoded on first access and memoised.
    pub fn entry_ref(&self, l: Label) -> Option<&BTreeSet<ResDef>> {
        self.solution.entry_ref(l)
    }

    /// Iterates the definitions reaching the entry of `l` without
    /// materialising a set (empty if the label is unknown).
    pub fn entry_iter(&self, l: Label) -> impl Iterator<Item = &ResDef> + '_ {
        self.solution.entry_iter(l)
    }
}

/// Runs the Reaching Definitions analysis of Table 5.
pub fn present_rd(
    design: &Design,
    cfg: &DesignCfg,
    cross: &CrossFlow,
    active: &ActiveRd,
    options: &RdOptions,
) -> PresentRd {
    match present_rd_bounded(design, cfg, cross, active, options, u64::MAX) {
        Ok(rd) => rd,
        Err(e) => unreachable!("unbounded solve cannot exhaust: {e}"),
    }
}

/// [`present_rd`] under a worklist step budget.
///
/// # Errors
///
/// Returns [`SolveExhausted`] if the fixpoint fails to converge within
/// `max_steps` worklist iterations.
pub fn present_rd_bounded(
    design: &Design,
    cfg: &DesignCfg,
    cross: &CrossFlow,
    active: &ActiveRd,
    options: &RdOptions,
    max_steps: u64,
) -> Result<PresentRd, SolveExhausted> {
    let mut eq: DenseEquations<ResDef> = DenseEquations::new(Combine::Union);
    // Per-process aggregates of the active-signal analysis over `cf`,
    // computed once instead of per wait label.
    let sync = SyncSummary::build(cross, active);

    for pcfg in &cfg.processes {
        let pidx = pcfg.process;
        let with_loop = options.process_repeats;
        let own_wait_labels: Vec<Label> = pcfg.wait_labels();

        // Intern the kill universe of every assigned variable once: the
        // initial-value marker plus one definition per assigning label.
        // Each assignment's kill set is then a precomputed id list instead
        // of a fresh set of owned `(name, def)` pairs.
        let mut var_defs: BTreeMap<&Ident, Vec<u32>> = BTreeMap::new();
        let mut var_def_at: BTreeMap<(&Ident, Label), u32> = BTreeMap::new();
        for (l, block) in &pcfg.blocks {
            if let Some(x) = block.kind.assigned_variable() {
                let id = eq.intern((x.clone(), Def::At(*l)));
                var_defs
                    .entry(x)
                    .or_insert_with(|| Vec::from([eq.intern((x.clone(), Def::Init))]))
                    .push(id);
                var_def_at.insert((x, *l), id);
            }
        }

        // Signals that may/must be active in a synchronisation this process
        // participates in, short of the per-wait-label own contribution.
        let may_elsewhere = sync.may_elsewhere(pidx);
        let must_elsewhere = sync.must_elsewhere(pidx);

        let mut preds = pcfg.predecessor_map(with_loop);
        for (l, block) in &pcfg.blocks {
            let row = eq.add_label(*l, preds.remove(l).unwrap_or_default());
            match &block.kind {
                BlockKind::VarAssign { target, .. } => {
                    eq.extend_kill(row, &var_defs[&target.name]);
                    eq.push_gen(row, var_def_at[&(&target.name, *l)]);
                }
                BlockKind::Wait { .. } if cross.is_nonempty() => {
                    // Signals that MAY be active in any participating
                    // process: own wait entry plus every wait of every
                    // other process (the union over cf distributes).
                    let mut may_active: BTreeSet<Ident> = active.may_be_active_at(*l);
                    may_active.extend(may_elsewhere.iter().cloned());
                    // Signals that MUST be active in some participating
                    // process for every synchronisation tuple: own wait
                    // entry, plus (per other process) the intersection
                    // over that process's wait labels.
                    let mut must_active: BTreeSet<Ident> = active.must_be_active_at(*l);
                    must_active.extend(must_elsewhere.iter().cloned());

                    // kill = must_active × WS(ss_i): present-value
                    // definitions made at this process's wait statements
                    // are overwritten when the signal is guaranteed to be
                    // re-synchronised.
                    for s in &must_active {
                        for lw in &own_wait_labels {
                            let id = eq.intern((s.clone(), Def::At(*lw)));
                            eq.push_kill(row, id);
                        }
                        if options.kill_initial_at_wait {
                            let id = eq.intern((s.clone(), Def::Init));
                            eq.push_kill(row, id);
                        }
                    }
                    // gen = may_active × {l}.
                    for s in may_active {
                        let id = eq.intern((s, Def::At(*l)));
                        eq.push_gen(row, id);
                    }
                }
                _ => {}
            }
        }

        // ι at the initial label: every free variable and signal of the
        // process may still hold its initial value.
        let init_row = eq.row_of(pcfg.init).expect("init label was added");
        for x in design.process_free_vars(pidx) {
            let id = eq.intern((x, Def::Init));
            eq.push_iota(init_row, id);
        }
        for s in design.process_free_signals(pidx) {
            let id = eq.intern((s, Def::Init));
            eq.push_iota(init_row, id);
        }
    }

    Ok(PresentRd {
        solution: eq.solve_bounded(max_steps)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::active_signals_rd;
    use vhdl1_syntax::frontend;

    fn analyse(src: &str, options: &RdOptions) -> (Design, DesignCfg, PresentRd) {
        let d = frontend(src).unwrap();
        let cfg = DesignCfg::build(&d);
        let cross = CrossFlow::build(&d);
        let active = active_signals_rd(&d, &cfg, options);
        let rd = present_rd(&d, &cfg, &cross, &active, options);
        (d, cfg, rd)
    }

    const SINGLE: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p : process
             variable x : std_logic;
             variable y : std_logic;
           begin
             x := a;
             y := x;
             x := y;
             t <= x;
             wait on a;
           end process p;
         end rtl;";

    #[test]
    fn initial_values_reach_first_use() {
        let (_, _, rd) = analyse(SINGLE, &RdOptions::default());
        // At label 1 the initial values of a, x, y, t are available.
        let defs = rd.entry_of(1);
        assert!(defs.contains(&("a".to_string(), Def::Init)));
        assert!(defs.contains(&("x".to_string(), Def::Init)));
        assert!(defs.contains(&("t".to_string(), Def::Init)));
    }

    #[test]
    fn variable_assignment_kills_previous_definitions() {
        let (_, _, rd) = analyse(SINGLE, &RdOptions::default());
        // At label 3 (x := y) the reaching definition of x is from label 1.
        assert_eq!(
            rd.definitions_reaching(3, "x"),
            BTreeSet::from([Def::At(1)])
        );
        // At label 4 (t <= x) the reaching definition of x is from label 3 only.
        assert_eq!(
            rd.definitions_reaching(4, "x"),
            BTreeSet::from([Def::At(3)])
        );
        // The initial value of x no longer reaches label 2.
        assert!(!rd.entry_of(2).contains(&("x".to_string(), Def::Init)));
    }

    #[test]
    fn wait_generates_present_definitions_for_active_signals() {
        let (_, _, rd) = analyse(SINGLE, &RdOptions::default());
        // After the wait at label 5, t's present value may stem from label 5;
        // because the process loops, the entry of label 1 sees it.
        assert!(rd.definitions_reaching(1, "t").contains(&Def::At(5)));
        // The initial value of t also still reaches (the paper's formulation
        // keeps the `?` definition).
        assert!(rd.definitions_reaching(1, "t").contains(&Def::Init));
    }

    const TWO_PROC: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p1 : process begin t <= a; wait on a; end process p1;
           p2 : process
             variable v : std_logic;
           begin
             v := t;
             b <= v;
             wait on t;
           end process p2;
         end rtl;";

    #[test]
    fn synchronisation_transfers_definitions_across_processes() {
        let (_, _, rd) = analyse(TWO_PROC, &RdOptions::default());
        // Labels: p1 = {1: t<=a, 2: wait}, p2 = {3: v:=t, 4: b<=v, 5: wait}.
        // At p2's wait (label 5), t may become newly defined because p1 may
        // have an active assignment; after looping, label 3 sees t defined at
        // label 5 (and possibly still the initial value).
        let defs = rd.definitions_reaching(3, "t");
        assert!(
            defs.contains(&Def::At(5)),
            "expected t defined at p2's wait, got {defs:?}"
        );
        assert!(defs.contains(&Def::Init));
    }

    #[test]
    fn wait_kill_uses_under_approximation() {
        // p1 assigns t on both branches => t must be active at p1's wait, so
        // the definition of t made at p2's wait on the previous iteration is
        // killed there... but killing happens in the process where the wait
        // label is; here we check that a guaranteed re-synchronisation kills
        // the old wait-definition within the same process.
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; null; wait on a; end process p1;
               p2 : process
                 variable v : std_logic;
               begin
                 v := t;
                 b <= v;
                 wait on t;
               end process p2;
             end rtl;";
        let (_, _, rd) = analyse(src, &RdOptions::default());
        // p1 labels: 1 (t<=a), 2 (wait), 3 (null), 4 (wait); p2: 5,6,7.
        // At p1's first wait, t is guaranteed active, so present-value
        // definitions of t made at p1's waits are killed and regenerated at 2.
        let defs_at_3 = rd.definitions_reaching(3, "t");
        assert!(defs_at_3.contains(&Def::At(2)));
        assert!(
            !defs_at_3.contains(&Def::At(4)),
            "old wait definition should be killed: {defs_at_3:?}"
        );
    }

    #[test]
    fn ablation_without_under_approximation_keeps_stale_definitions() {
        // p1 assigns t before each of its two waits; with the
        // under-approximation the second wait kills the present-value
        // definition made at the first wait, without it the stale definition
        // survives around the loop.
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; t <= a; wait on a; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
             end rtl;";
        // p1 labels: 1 (t<=a), 2 (wait), 3 (t<=a), 4 (wait); p2: 5, 6.
        let (_, _, rd) = analyse(src, &RdOptions::default());
        let defs_at_1 = rd.definitions_reaching(1, "t");
        assert!(defs_at_1.contains(&Def::At(4)));
        assert!(
            !defs_at_1.contains(&Def::At(2)),
            "definition from the first wait should be killed at the second: {defs_at_1:?}"
        );
        let opts = RdOptions {
            use_under_approximation: false,
            ..Default::default()
        };
        let (_, _, rd_ablate) = analyse(src, &opts);
        let defs_at_1 = rd_ablate.definitions_reaching(1, "t");
        assert!(
            defs_at_1.contains(&Def::At(2)),
            "without RD∩ the stale definition survives"
        );
        assert!(defs_at_1.contains(&Def::At(4)));
    }

    #[test]
    fn straight_line_mode_matches_sequential_intuition() {
        // Program (a) of the paper: [c := b]^1; [b := a]^2 as variables in a
        // single process without looping.
        let src = "entity e is port(inp : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic;
                 variable b : std_logic;
                 variable c : std_logic;
               begin
                 c := b;
                 b := a;
               end process p;
             end rtl;";
        let opts = RdOptions {
            process_repeats: false,
            ..Default::default()
        };
        let (_, _, rd) = analyse(src, &opts);
        assert_eq!(rd.definitions_reaching(1, "b"), BTreeSet::from([Def::Init]));
        assert_eq!(rd.definitions_reaching(2, "a"), BTreeSet::from([Def::Init]));
        // With looping enabled, b's definition from label 2 wraps around.
        let (_, _, rd_loop) = analyse(src, &RdOptions::default());
        assert!(rd_loop.definitions_reaching(1, "b").contains(&Def::At(2)));
    }

    #[test]
    fn def_display_forms() {
        assert_eq!(Def::Init.to_string(), "?");
        assert_eq!(Def::At(7).to_string(), "7");
    }
}
