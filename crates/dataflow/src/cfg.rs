//! Control-flow graphs for VHDL1 processes.
//!
//! Following Section 4 of the paper (and the conventions of *Principles of
//! Program Analysis*), every elementary statement of a process body is a
//! *block* identified by its label; `flow(ss)` relates labels of consecutive
//! blocks, `init(ss)` is the label of the first block and `final(ss)` the
//! labels of the last blocks.
//!
//! A process `i : process ... begin ss_i; end process i` behaves like
//! `null; while '1' do ss_i` (Section 3.2), so the process CFG additionally
//! contains *loop-back* edges from the final labels of the body to its
//! initial label.  The analyses treat the initial label specially, exactly as
//! the synthetic `null`/`while` blocks of the rewriting would.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::{Design, Expr, Ident, Label, Stmt, Target};

/// The kind of an elementary block, with the data needed by the analyses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// `null`.
    Null,
    /// `x := e` (possibly sliced).
    VarAssign {
        /// Assigned variable.
        target: Target,
        /// Right-hand side.
        expr: Expr,
    },
    /// `s <= e` (possibly sliced).
    SignalAssign {
        /// Assigned signal.
        target: Target,
        /// Right-hand side.
        expr: Expr,
    },
    /// `wait on S until e`.
    Wait {
        /// Waited-on signals `S`.
        on: Vec<Ident>,
        /// Resumption guard.
        until: Expr,
    },
    /// The condition of an `if`.
    IfCond {
        /// The condition expression.
        cond: Expr,
    },
    /// The condition of a `while`.
    WhileCond {
        /// The condition expression.
        cond: Expr,
    },
}

impl BlockKind {
    /// The signal assigned by this block, if it is a signal assignment.
    pub fn assigned_signal(&self) -> Option<&Ident> {
        match self {
            BlockKind::SignalAssign { target, .. } => Some(&target.name),
            _ => None,
        }
    }

    /// The variable assigned by this block, if it is a variable assignment.
    pub fn assigned_variable(&self) -> Option<&Ident> {
        match self {
            BlockKind::VarAssign { target, .. } => Some(&target.name),
            _ => None,
        }
    }

    /// Whether the block is a `wait` statement.
    pub fn is_wait(&self) -> bool {
        matches!(self, BlockKind::Wait { .. })
    }
}

/// An elementary block of the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block's label (unique across the program).
    pub label: Label,
    /// Index of the process the block belongs to.
    pub process: usize,
    /// The block's kind and payload.
    pub kind: BlockKind,
}

/// The control-flow graph of one process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessCfg {
    /// Index of the process in the design.
    pub process: usize,
    /// Label of the initial block `init(ss_i)`.
    pub init: Label,
    /// Labels of the final blocks `final(ss_i)`.
    pub finals: BTreeSet<Label>,
    /// Blocks of the process, keyed by label.
    pub blocks: BTreeMap<Label, BasicBlock>,
    /// Flow relation `flow(ss_i)` (intra-body edges only).
    pub flow: BTreeSet<(Label, Label)>,
    /// Loop-back edges from `final(ss_i)` to `init(ss_i)` induced by the
    /// `while '1'` rewriting of the process.
    pub loop_back: BTreeSet<(Label, Label)>,
}

impl ProcessCfg {
    /// All edges, including loop-back edges if `with_loop` is set.
    pub fn edges(&self, with_loop: bool) -> BTreeSet<(Label, Label)> {
        let mut out = self.flow.clone();
        if with_loop {
            out.extend(self.loop_back.iter().copied());
        }
        out
    }

    /// Predecessors of `l` under the chosen edge set.
    pub fn predecessors(&self, l: Label, with_loop: bool) -> Vec<Label> {
        let mut out: Vec<Label> = self
            .flow
            .iter()
            .filter(|(_, t)| *t == l)
            .map(|(f, _)| *f)
            .collect();
        if with_loop {
            out.extend(
                self.loop_back
                    .iter()
                    .filter(|(_, t)| *t == l)
                    .map(|(f, _)| *f),
            );
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Predecessor lists of every label of the process, computed in one pass
    /// over the edge sets.  Equivalent to calling [`ProcessCfg::predecessors`]
    /// per label, without the per-call edge scan.
    pub fn predecessor_map(&self, with_loop: bool) -> BTreeMap<Label, Vec<Label>> {
        let mut out: BTreeMap<Label, Vec<Label>> =
            self.blocks.keys().map(|l| (*l, Vec::new())).collect();
        let mut insert = |f: Label, t: Label| {
            if let Some(ps) = out.get_mut(&t) {
                ps.push(f);
            }
        };
        for &(f, t) in &self.flow {
            insert(f, t);
        }
        if with_loop {
            for &(f, t) in &self.loop_back {
                insert(f, t);
            }
        }
        for ps in out.values_mut() {
            ps.sort_unstable();
            ps.dedup();
        }
        out
    }

    /// Labels of the process in ascending order.
    pub fn labels(&self) -> Vec<Label> {
        self.blocks.keys().copied().collect()
    }

    /// Labels of the `wait` blocks of the process.
    pub fn wait_labels(&self) -> Vec<Label> {
        self.blocks
            .values()
            .filter(|b| b.kind.is_wait())
            .map(|b| b.label)
            .collect()
    }
}

/// The control-flow graphs of every process of a design, together with the
/// block table indexed by label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignCfg {
    /// One CFG per process, in process order.
    pub processes: Vec<ProcessCfg>,
}

impl ProcessCfg {
    /// Builds the CFG of a single process — the per-unit constructor the
    /// incremental engine rebuilds touched processes with.  [`DesignCfg::build`]
    /// is exactly this, mapped over every process.
    pub fn build(p: &vhdl1_syntax::ElabProcess) -> ProcessCfg {
        let mut blocks = BTreeMap::new();
        collect_blocks(&p.body, p.index, &mut blocks);
        let init = init_label(&p.body);
        let finals = final_labels(&p.body);
        let mut flow = BTreeSet::new();
        flow_edges(&p.body, &mut flow);
        let loop_back = finals.iter().map(|f| (*f, init)).collect();
        ProcessCfg {
            process: p.index,
            init,
            finals,
            blocks,
            flow,
            loop_back,
        }
    }
}

impl DesignCfg {
    /// Builds the CFGs of every process of `design`.
    pub fn build(design: &Design) -> DesignCfg {
        let processes = design.processes.iter().map(ProcessCfg::build).collect();
        DesignCfg { processes }
    }

    /// Assembles a design CFG from per-process CFGs (an incremental engine's
    /// mix of cached and rebuilt units).  The caller supplies them in
    /// process order; the result is indistinguishable from
    /// [`DesignCfg::build`] on the corresponding design.
    pub fn from_processes(processes: Vec<ProcessCfg>) -> DesignCfg {
        DesignCfg { processes }
    }

    /// Looks up the block with the given label.
    pub fn block(&self, label: Label) -> Option<&BasicBlock> {
        self.processes.iter().find_map(|p| p.blocks.get(&label))
    }

    /// The CFG of the process owning `label`.
    pub fn cfg_of(&self, label: Label) -> Option<&ProcessCfg> {
        self.processes
            .iter()
            .find(|p| p.blocks.contains_key(&label))
    }

    /// All labels of the design in ascending order.
    pub fn labels(&self) -> Vec<Label> {
        let mut out: Vec<Label> = self
            .processes
            .iter()
            .flat_map(|p| p.blocks.keys().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Labels, in process `pidx`, of blocks that assign to signal `s`
    /// (the "`B_{l'}` assigns to `s` in process `i`" side condition of
    /// Table 4).
    pub fn signal_assign_labels(&self, pidx: usize, s: &str) -> BTreeSet<Label> {
        self.processes[pidx]
            .blocks
            .values()
            .filter(|b| b.kind.assigned_signal().map(|n| n == s).unwrap_or(false))
            .map(|b| b.label)
            .collect()
    }

    /// Labels, in process `pidx`, of blocks that assign to variable `x`
    /// (the side condition of Table 5).
    pub fn variable_assign_labels(&self, pidx: usize, x: &str) -> BTreeSet<Label> {
        self.processes[pidx]
            .blocks
            .values()
            .filter(|b| b.kind.assigned_variable().map(|n| n == x).unwrap_or(false))
            .map(|b| b.label)
            .collect()
    }

    /// Signals assigned anywhere in process `pidx`.
    pub fn signals_assigned_in(&self, pidx: usize) -> BTreeSet<Ident> {
        self.processes[pidx]
            .blocks
            .values()
            .filter_map(|b| b.kind.assigned_signal().cloned())
            .collect()
    }
}

fn collect_blocks(stmt: &Stmt, process: usize, out: &mut BTreeMap<Label, BasicBlock>) {
    match stmt {
        Stmt::Null { label } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::Null,
                },
            );
        }
        Stmt::VarAssign {
            label,
            target,
            expr,
        } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::VarAssign {
                        target: target.clone(),
                        expr: expr.clone(),
                    },
                },
            );
        }
        Stmt::SignalAssign {
            label,
            target,
            expr,
        } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::SignalAssign {
                        target: target.clone(),
                        expr: expr.clone(),
                    },
                },
            );
        }
        Stmt::Wait { label, on, until } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::Wait {
                        on: on.clone(),
                        until: until.clone(),
                    },
                },
            );
        }
        Stmt::Seq(a, b) => {
            collect_blocks(a, process, out);
            collect_blocks(b, process, out);
        }
        Stmt::If {
            label,
            cond,
            then_branch,
            else_branch,
        } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::IfCond { cond: cond.clone() },
                },
            );
            collect_blocks(then_branch, process, out);
            collect_blocks(else_branch, process, out);
        }
        Stmt::While { label, cond, body } => {
            out.insert(
                *label,
                BasicBlock {
                    label: *label,
                    process,
                    kind: BlockKind::WhileCond { cond: cond.clone() },
                },
            );
            collect_blocks(body, process, out);
        }
    }
}

/// `init(ss)`: the label of the first elementary block of `ss`.
pub fn init_label(stmt: &Stmt) -> Label {
    match stmt {
        Stmt::Null { label }
        | Stmt::VarAssign { label, .. }
        | Stmt::SignalAssign { label, .. }
        | Stmt::Wait { label, .. }
        | Stmt::If { label, .. }
        | Stmt::While { label, .. } => *label,
        Stmt::Seq(a, _) => init_label(a),
    }
}

/// `final(ss)`: the labels of the blocks at which `ss` may terminate.
pub fn final_labels(stmt: &Stmt) -> BTreeSet<Label> {
    match stmt {
        Stmt::Null { label }
        | Stmt::VarAssign { label, .. }
        | Stmt::SignalAssign { label, .. }
        | Stmt::Wait { label, .. } => BTreeSet::from([*label]),
        Stmt::Seq(_, b) => final_labels(b),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let mut out = final_labels(then_branch);
            out.extend(final_labels(else_branch));
            out
        }
        Stmt::While { label, .. } => BTreeSet::from([*label]),
    }
}

/// `flow(ss)`: the intra-statement control-flow edges.
pub fn flow_edges(stmt: &Stmt, out: &mut BTreeSet<(Label, Label)>) {
    match stmt {
        Stmt::Null { .. }
        | Stmt::VarAssign { .. }
        | Stmt::SignalAssign { .. }
        | Stmt::Wait { .. } => {}
        Stmt::Seq(a, b) => {
            flow_edges(a, out);
            flow_edges(b, out);
            let ib = init_label(b);
            for l in final_labels(a) {
                out.insert((l, ib));
            }
        }
        Stmt::If {
            label,
            then_branch,
            else_branch,
            ..
        } => {
            flow_edges(then_branch, out);
            flow_edges(else_branch, out);
            out.insert((*label, init_label(then_branch)));
            out.insert((*label, init_label(else_branch)));
        }
        Stmt::While { label, body, .. } => {
            flow_edges(body, out);
            out.insert((*label, init_label(body)));
            for l in final_labels(body) {
                out.insert((l, *label));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    fn design(body: &str) -> Design {
        let src = format!(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p : process
                 variable x : std_logic;
                 variable y : std_logic;
               begin
                 {body}
               end process p;
             end rtl;"
        );
        frontend(&src).unwrap()
    }

    #[test]
    fn straight_line_flow() {
        let d = design("x := a; t <= x; wait on a;");
        let cfg = DesignCfg::build(&d);
        let p = &cfg.processes[0];
        assert_eq!(p.init, 1);
        assert_eq!(p.finals, BTreeSet::from([3]));
        assert_eq!(p.flow, BTreeSet::from([(1, 2), (2, 3)]));
        assert_eq!(p.loop_back, BTreeSet::from([(3, 1)]));
        assert_eq!(p.wait_labels(), vec![3]);
    }

    #[test]
    fn if_flow_and_finals() {
        let d = design("if a = '1' then x := '1'; else y := '0'; end if; wait on a;");
        let cfg = DesignCfg::build(&d);
        let p = &cfg.processes[0];
        // labels: 1 = cond, 2 = then, 3 = else, 4 = wait
        assert!(p.flow.contains(&(1, 2)));
        assert!(p.flow.contains(&(1, 3)));
        assert!(p.flow.contains(&(2, 4)));
        assert!(p.flow.contains(&(3, 4)));
        assert_eq!(p.finals, BTreeSet::from([4]));
        assert!(matches!(p.blocks[&1].kind, BlockKind::IfCond { .. }));
    }

    #[test]
    fn while_flow_has_back_edge() {
        let d = design("while a = '0' loop x := a; end loop; wait on a;");
        let cfg = DesignCfg::build(&d);
        let p = &cfg.processes[0];
        // labels: 1 = while cond, 2 = body assign, 3 = wait
        assert!(p.flow.contains(&(1, 2)));
        assert!(p.flow.contains(&(2, 1)));
        assert!(p.flow.contains(&(1, 3)));
        assert_eq!(p.predecessors(1, false), vec![2]);
    }

    #[test]
    fn assign_label_queries() {
        let d = design("x := a; t <= x; t <= a; wait on a;");
        let cfg = DesignCfg::build(&d);
        assert_eq!(cfg.signal_assign_labels(0, "t"), BTreeSet::from([2, 3]));
        assert_eq!(cfg.variable_assign_labels(0, "x"), BTreeSet::from([1]));
        assert_eq!(
            cfg.signals_assigned_in(0),
            BTreeSet::from(["t".to_string()])
        );
    }

    #[test]
    fn predecessor_map_matches_per_label_queries() {
        let d = design("if a = '1' then x := '1'; else y := '0'; end if; wait on a;");
        let cfg = DesignCfg::build(&d);
        let p = &cfg.processes[0];
        for with_loop in [false, true] {
            let map = p.predecessor_map(with_loop);
            assert_eq!(map.len(), p.blocks.len());
            for (&l, preds) in &map {
                assert_eq!(preds, &p.predecessors(l, with_loop), "label {l}");
            }
        }
    }

    #[test]
    fn design_cfg_label_lookup() {
        let d = design("x := a; wait on a;");
        let cfg = DesignCfg::build(&d);
        assert_eq!(cfg.labels(), vec![1, 2]);
        assert_eq!(cfg.block(2).unwrap().process, 0);
        assert!(cfg.block(99).is_none());
        assert_eq!(cfg.cfg_of(1).unwrap().process, 0);
    }
}
