//! Reference set-based solver — the differential-testing oracle for the
//! dense engine of [`crate::framework`].
//!
//! This is the original `BTreeSet`/`HashSet` worklist solver the dense
//! engine replaced, preserved verbatim in behaviour: [`solve_sets`] computes
//! the same least solution as [`crate::framework::solve`], but returns plain
//! ordered maps.  It is compiled for tests and behind the `setref` feature,
//! so external users can cross-check the dense solver too; the property
//! tests at the bottom of this module compare both engines on randomized
//! equation systems (both [`Combine`] operators, forced entries, unknown
//! predecessors, cycles).

use crate::framework::{Combine, Equations};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use vhdl1_syntax::Label;

/// Computes the least solution of `eq` with the reference set-based
/// worklist iteration, returning `(entry, exit)` maps.
pub fn solve_sets<F: Ord + Hash + Clone>(
    eq: &Equations<F>,
) -> (BTreeMap<Label, BTreeSet<F>>, BTreeMap<Label, BTreeSet<F>>) {
    let empty: HashSet<F> = HashSet::new();
    let mut entry: HashMap<Label, HashSet<F>> =
        eq.labels.iter().map(|l| (*l, HashSet::new())).collect();
    let mut exit: HashMap<Label, HashSet<F>> =
        eq.labels.iter().map(|l| (*l, HashSet::new())).collect();

    // Successor map for worklist propagation.
    let mut succs: HashMap<Label, Vec<Label>> = HashMap::new();
    for (l, ps) in &eq.preds {
        for p in ps {
            succs.entry(*p).or_default().push(*l);
        }
    }

    let mut worklist: VecDeque<Label> = eq.labels.iter().copied().collect();
    let mut queued: HashSet<Label> = eq.labels.iter().copied().collect();

    while let Some(l) = worklist.pop_front() {
        queued.remove(&l);

        let new_entry = if let Some(forced) = eq.forced_entry.get(&l) {
            forced.iter().cloned().collect()
        } else {
            let preds = eq.preds.get(&l).map(Vec::as_slice).unwrap_or(&[]);
            let mut combined: HashSet<F> = match eq.combine {
                Combine::Union => {
                    let mut acc = HashSet::new();
                    for p in preds {
                        acc.extend(exit.get(p).unwrap_or(&empty).iter().cloned());
                    }
                    acc
                }
                Combine::IntersectDotted => {
                    // ⋂̇ ∅ = ∅
                    let mut iter = preds.iter();
                    match iter.next() {
                        None => HashSet::new(),
                        Some(first) => {
                            let mut acc = exit.get(first).cloned().unwrap_or_default();
                            for p in iter {
                                let other = exit.get(p).unwrap_or(&empty);
                                acc.retain(|f| other.contains(f));
                            }
                            acc
                        }
                    }
                }
            };
            if let Some(iota) = eq.iota.get(&l) {
                combined.extend(iota.iter().cloned());
            }
            combined
        };

        let kill = eq.kill.get(&l);
        let gen = eq.gen.get(&l);
        let mut new_exit: HashSet<F> = new_entry
            .iter()
            .filter(|f| kill.is_none_or(|k| !k.contains(*f)))
            .cloned()
            .collect();
        if let Some(gen) = gen {
            new_exit.extend(gen.iter().cloned());
        }

        let entry_changed = entry.get(&l) != Some(&new_entry);
        let exit_changed = exit.get(&l) != Some(&new_exit);
        if entry_changed {
            entry.insert(l, new_entry);
        }
        if exit_changed {
            exit.insert(l, new_exit);
            for s in succs.get(&l).map(Vec::as_slice).unwrap_or(&[]) {
                if queued.insert(*s) {
                    worklist.push_back(*s);
                }
            }
        }
    }

    let ordered = |m: HashMap<Label, HashSet<F>>| -> BTreeMap<Label, BTreeSet<F>> {
        m.into_iter()
            .map(|(l, s)| (l, s.into_iter().collect()))
            .collect()
    };
    (ordered(entry), ordered(exit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::solve;
    use proptest::prelude::*;

    /// A randomized equation system over a small fact alphabet: arbitrary
    /// edges (including cycles, self-loops and dangling predecessor labels),
    /// random gen/kill/ι sets and random forced entries.
    #[derive(Debug, Clone)]
    struct ArbSystem {
        n: usize,
        edges: Vec<(usize, usize)>,
        gen: Vec<Vec<u8>>,
        kill: Vec<Vec<u8>>,
        iota: Vec<Vec<u8>>,
        forced: Vec<Option<Vec<u8>>>,
    }

    impl ArbSystem {
        fn to_equations(&self, combine: Combine) -> Equations<u8> {
            let labels: Vec<Label> = (1..=self.n).map(|i| i as Label).collect();
            let mut preds: BTreeMap<Label, Vec<Label>> = BTreeMap::new();
            for &(f, t) in &self.edges {
                // Map into the label range; a small share of edges keeps an
                // out-of-range source to exercise unknown-predecessor
                // handling.
                let from = (f % (self.n + 2) + 1) as Label;
                let to = (t % self.n + 1) as Label;
                preds.entry(to).or_default().push(from);
            }
            let sets = |v: &[Vec<u8>]| -> BTreeMap<Label, BTreeSet<u8>> {
                v.iter()
                    .enumerate()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(i, s)| ((i + 1) as Label, s.iter().copied().collect()))
                    .collect()
            };
            Equations {
                labels,
                preds,
                combine,
                iota: sets(&self.iota),
                forced_entry: self
                    .forced
                    .iter()
                    .enumerate()
                    .filter_map(|(i, f)| {
                        f.as_ref()
                            .map(|s| ((i + 1) as Label, s.iter().copied().collect()))
                    })
                    .collect(),
                kill: sets(&self.kill),
                gen: sets(&self.gen),
            }
        }
    }

    fn arb_system() -> impl Strategy<Value = ArbSystem> {
        (2usize..10).prop_flat_map(|n| {
            let facts = proptest::collection::vec(0u8..12, 0..4);
            (
                Just(n),
                proptest::collection::vec((0usize..16, 0usize..16), 0..24),
                proptest::collection::vec(facts.clone(), n..n + 1),
                proptest::collection::vec(facts.clone(), n..n + 1),
                proptest::collection::vec(facts.clone(), n..n + 1),
                proptest::collection::vec(proptest::option::weighted(0.2, facts), n..n + 1),
            )
                .prop_map(|(n, edges, gen, kill, iota, forced)| ArbSystem {
                    n,
                    edges,
                    gen,
                    kill,
                    iota,
                    forced,
                })
        })
    }

    fn assert_engines_agree(eq: &Equations<u8>) {
        let dense = solve(eq);
        let (entry, exit) = solve_sets(eq);
        for &l in &eq.labels {
            assert_eq!(
                Some(&entry[&l]),
                dense.entry_ref(l),
                "entry mismatch at label {l} ({:?})",
                eq.combine
            );
            assert_eq!(
                Some(&exit[&l]),
                dense.exit_ref(l),
                "exit mismatch at label {l} ({:?})",
                eq.combine
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn dense_union_matches_set_oracle(sys in arb_system()) {
            assert_engines_agree(&sys.to_equations(Combine::Union));
        }

        #[test]
        fn dense_intersect_matches_set_oracle(sys in arb_system()) {
            assert_engines_agree(&sys.to_equations(Combine::IntersectDotted));
        }
    }

    #[test]
    fn forced_entry_agrees_between_engines() {
        // Deterministic regression for the forced-entry edge case: a forced
        // label inside a cycle, in both combine modes.
        for combine in [Combine::Union, Combine::IntersectDotted] {
            let eq = Equations {
                labels: vec![1, 2, 3],
                preds: BTreeMap::from([(1, vec![3]), (2, vec![1]), (3, vec![2])]),
                combine,
                iota: BTreeMap::from([(1, BTreeSet::from([7u8]))]),
                forced_entry: BTreeMap::from([(2, BTreeSet::from([1u8, 2]))]),
                kill: BTreeMap::from([(3, BTreeSet::from([1u8]))]),
                gen: BTreeMap::from([(3, BTreeSet::from([9u8]))]),
            };
            assert_engines_agree(&eq);
        }
    }
}
