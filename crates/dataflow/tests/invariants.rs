//! Cross-cutting invariants of the Reaching Definitions analyses, checked on
//! a family of representative designs (including randomly generated process
//! bodies): the under-approximation is always contained in the
//! over-approximation (the property the special intersection operator of
//! Section 4.1 is designed to guarantee), and the analyses only ever talk
//! about labels and resources that exist in the design.

use proptest::prelude::*;
use vhdl1_dataflow::{RdOptions, ReachingDefinitions};
use vhdl1_syntax::{frontend, Design};

fn check_invariants(design: &Design, options: &RdOptions) {
    let rd = ReachingDefinitions::compute(design, options);
    let labels = rd.cfg.labels();
    let owners = design.label_owner();
    assert_eq!(
        labels.len(),
        owners.len(),
        "every elementary block has a CFG node"
    );

    for &l in &labels {
        let over = rd.active.over.entry_of(l);
        let under = rd.active.under.entry_of(l);
        for fact in &under {
            assert!(
                over.contains(fact),
                "RD∩ entry at {l} contains {fact:?} which is missing from RD∪"
            );
        }
        // Every definition mentioned by the analyses refers to an existing
        // signal and an existing label of the same process.
        for (sig, def_label) in over.iter() {
            assert!(design.is_signal(sig), "{sig} is not a signal");
            assert_eq!(
                owners.get(def_label),
                owners.get(&l),
                "definitions stay process-local"
            );
        }
        for (name, _) in rd.present.entry_of(l) {
            assert!(design.resource_names().contains(&name));
        }
    }
}

#[test]
fn invariants_hold_on_representative_designs() {
    let sources = [
        // Single process, branching and reassignment.
        "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p : process
             variable x : std_logic;
           begin
             x := a;
             if a = '1' then t <= x; else t <= '0'; end if;
             b <= t;
             wait on a;
           end process p;
         end rtl;",
        // Two processes with multiple synchronisation points.
        "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
           signal u : std_logic;
         begin
           p1 : process begin t <= a; wait on a; u <= t; wait on a, t; end process p1;
           p2 : process begin b <= u; wait on u; end process p2;
         end rtl;",
        // Concurrent assignments and a block.
        "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           blk : block signal t : std_logic; begin
             t <= a;
             b <= t;
           end block blk;
         end rtl;",
    ];
    for src in sources {
        let design = frontend(src).unwrap();
        for options in [
            RdOptions::default(),
            RdOptions {
                process_repeats: false,
                ..Default::default()
            },
            RdOptions {
                kill_initial_at_wait: true,
                ..Default::default()
            },
        ] {
            check_invariants(&design, &options);
        }
    }
}

#[test]
fn invariants_hold_on_the_aes_shift_rows_workload() {
    let design = frontend(&aes_vhdl_shift_rows()).unwrap();
    check_invariants(&design, &RdOptions::default());
}

// Local copy of the ShiftRows generator call to avoid a dependency cycle with
// the `aes-vhdl` crate (which depends on `vhdl1-sim` only); the source is
// small enough to regenerate textually here.
fn aes_vhdl_shift_rows() -> String {
    let mut ports_in = Vec::new();
    let mut ports_out = Vec::new();
    for r in 0..4 {
        for c in 0..4 {
            ports_in.push(format!("a_{r}_{c}"));
            ports_out.push(format!("b_{r}_{c}"));
        }
    }
    let mut body = String::new();
    for c in 0..4 {
        body.push_str(&format!("    b_0_{c} <= a_0_{c};\n"));
    }
    for row in 1..4 {
        for c in 0..4 {
            body.push_str(&format!("    temp_{c} := a_{row}_{c};\n"));
        }
        for c in 0..4 {
            body.push_str(&format!("    b_{row}_{c} <= temp_{};\n", (c + row) % 4));
        }
    }
    format!(
        "entity shift_rows is port(
           {} : in std_logic_vector(7 downto 0);
           {} : out std_logic_vector(7 downto 0)
         ); end shift_rows;
         architecture rtl of shift_rows is begin
           shifter : process
             variable temp_0 : std_logic_vector(7 downto 0);
             variable temp_1 : std_logic_vector(7 downto 0);
             variable temp_2 : std_logic_vector(7 downto 0);
             variable temp_3 : std_logic_vector(7 downto 0);
           begin
{body}    wait on {};
           end process shifter;
         end rtl;",
        ports_in.join(", "),
        ports_out.join(", "),
        ports_in.join(", ")
    )
}

/// Random straight-line process bodies over two variables and one signal.
fn arb_body() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        Just("x := a;".to_string()),
        Just("y := x;".to_string()),
        Just("x := y;".to_string()),
        Just("t <= x;".to_string()),
        Just("t <= a;".to_string()),
        Just("if a = '1' then x := y; else y := a; end if;".to_string()),
        Just("wait on a;".to_string()),
    ];
    proptest::collection::vec(stmt, 1..10).prop_map(|v| v.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn under_approximation_is_contained_in_over_approximation(body in arb_body()) {
        let src = format!(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p : process
                 variable x : std_logic;
                 variable y : std_logic;
               begin
                 {body}
                 wait on a;
               end process p;
             end rtl;"
        );
        let design = frontend(&src).unwrap();
        check_invariants(&design, &RdOptions::default());
        check_invariants(&design, &RdOptions { process_repeats: false, ..Default::default() });
    }
}
