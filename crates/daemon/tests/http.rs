//! Real-TCP integration tests of `vhdl1d`: concurrent `POST /analyze`
//! responses are byte-identical to `vhdl1c analyze --format json` over the
//! same input, warm artifacts survive a daemon restart, and `/shutdown`
//! drains gracefully.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use vhdl1_cli::driver::{run_batch, BatchOptions, Job, VerifyOptions};
use vhdl1_corpus::{generate, write_manifest, CorpusSpec};
use vhdl1_daemon::{Server, ServerConfig};
use vhdl1_infoflow::CachePolicy;

/// Self-cleaning scratch directory.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vhdl1d-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Starts a daemon on an ephemeral port; returns its address and the
/// blocked `run()` thread (joined after `POST /shutdown`).
fn spawn_daemon(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

/// Minimal HTTP/1.1 client: one request per connection, like curl.
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: vhdl1d\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response header");
    let head_text = std::str::from_utf8(&raw[..header_end]).unwrap();
    let status: u16 = head_text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http(addr, "POST", "/shutdown", b"");
    assert_eq!(status, 200);
    handle.join().expect("daemon drained and exited");
}

#[test]
fn concurrent_analyze_responses_match_cli_bytes() {
    let designs = generate(&CorpusSpec::new(23, 8));
    let (addr, handle) = spawn_daemon(ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    });

    std::thread::scope(|scope| {
        for d in &designs {
            scope.spawn(move || {
                let expected = run_batch(
                    &[Job::from_source(d.name.clone(), d.source.clone())],
                    &BatchOptions::default(),
                )
                .to_json();
                let (status, body) = http(
                    addr,
                    "POST",
                    &format!("/analyze?name={}", d.name),
                    d.source.as_bytes(),
                );
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                assert_eq!(
                    body,
                    expected.as_bytes(),
                    "daemon bytes must match `vhdl1c analyze --format json`"
                );
            });
        }
    });

    // A manifest body fans out into one report entry per design, exactly
    // like `vhdl1c analyze corpus.manifest`.
    let manifest = write_manifest(&designs);
    let jobs: Vec<Job> = designs.iter().cloned().map(Job::from_generated).collect();
    let expected = run_batch(&jobs, &BatchOptions::default()).to_json();
    let (status, body) = http(addr, "POST", "/analyze", manifest.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());

    shutdown(addr, handle);
}

#[test]
fn verify_endpoint_matches_cli_verify_bytes() {
    let designs = generate(&CorpusSpec::new(29, 3));
    let manifest = write_manifest(&designs);
    let jobs: Vec<Job> = designs.into_iter().map(Job::from_generated).collect();
    let expected = run_batch(
        &jobs,
        &BatchOptions {
            verify: Some(VerifyOptions { rounds: 4, seed: 9 }),
            ..BatchOptions::default()
        },
    )
    .to_json();

    let (addr, handle) = spawn_daemon(ServerConfig::default());
    let (status, body) = http(addr, "POST", "/verify?rounds=4&seed=9", manifest.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());
    shutdown(addr, handle);
}

#[test]
fn update_endpoint_replays_an_edit_stream_incrementally() {
    let stream = vhdl1_corpus::edit_stream(13, 6, 3);
    let (addr, handle) = spawn_daemon(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    // Successive revisions of one design id flow to the same warm engine;
    // every response must still be byte-identical to a from-scratch
    // `vhdl1c analyze --format json` over that revision.
    for src in stream.sources() {
        let expected = run_batch(
            &[Job::from_source(stream.name.clone(), src.to_string())],
            &BatchOptions::default(),
        )
        .to_json();
        let (status, body) = http(
            addr,
            "POST",
            &format!("/update?id={}", stream.name),
            src.as_bytes(),
        );
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert_eq!(
            body,
            expected.as_bytes(),
            "incremental update bytes must match a fresh analysis"
        );
    }

    // The engine actually reused the untouched processes: each revision
    // after the first recomputes one process and reuses the other five.
    let (status, metrics) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    let reused: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("vhdl1_units_reused_total "))
        .and_then(|v| v.parse().ok())
        .expect("unit reuse counter exposed");
    assert_eq!(
        reused,
        (stream.revisions.len() * (stream.processes - 1)) as u64,
        "each edit must reuse every untouched process"
    );

    // Protocol errors: an update without a design id cannot be routed.
    let (status, _) = http(addr, "POST", "/update", stream.base.as_bytes());
    assert_eq!(status, 400, "update without ?id= is a client error");
    let (status, _) = http(addr, "GET", "/update", b"");
    assert_eq!(status, 405);

    shutdown(addr, handle);
}

#[test]
fn warm_artifacts_survive_a_daemon_restart() {
    let tmp = TempDir::new("restart");
    let config = || {
        let mut config = ServerConfig {
            workers: 2,
            cache: CachePolicy::Persistent {
                dir: tmp.0.clone(),
                cap: 64,
            },
            ..ServerConfig::default()
        };
        // Tracing makes /metrics count actual frontend runs; it is
        // excluded from the cache fingerprint, so warm artifacts are
        // shared with non-tracing engines.
        config.analysis.trace = true;
        config
    };
    let designs = generate(&CorpusSpec::new(31, 4));
    let manifest = write_manifest(&designs);

    let (addr, handle) = spawn_daemon(config());
    let (status, cold) = http(addr, "POST", "/analyze", manifest.as_bytes());
    assert_eq!(status, 200);
    shutdown(addr, handle);

    // A fresh daemon over the same cache directory serves the same bytes
    // from disk; /metrics proves the artifacts were actually hit.
    let (addr, handle) = spawn_daemon(config());
    let (status, warm) = http(addr, "POST", "/analyze", manifest.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "bytes must be stable across restarts");
    let (status, metrics) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("vhdl1_store_hits_total "))
        .and_then(|v| v.parse().ok())
        .expect("store hit counter exposed");
    assert!(hits >= 1, "restart must serve from the artifact store");
    let frontend: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("vhdl1_stage_runs_total{stage=\"frontend\"} "))
        .and_then(|v| v.parse().ok())
        .expect("frontend stage counter exposed");
    assert_eq!(frontend, 0, "warm daemon must not re-parse");
    shutdown(addr, handle);
}

#[test]
fn health_metrics_and_protocol_errors() {
    let (addr, handle) = spawn_daemon(ServerConfig::default());

    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let (status, body) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("vhdl1_engine_cache_misses_total"));
    assert!(text.contains("vhdl1d_requests_total{endpoint=\"healthz\"} 1"));

    let (status, _) = http(addr, "GET", "/analyze", b"");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "POST", "/nope", b"x");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/analyze", b"");
    assert_eq!(status, 400, "empty body is a client error");
    let (status, _) = http(
        addr,
        "POST",
        "/analyze?deadline_ms=abc",
        b"entity e is end;",
    );
    assert_eq!(status, 400, "unparseable query parameter is a client error");
    let (status, _) = http(addr, "POST", "/analyze", b"entity oops");
    assert_eq!(
        status, 200,
        "parse failures are report errors, not HTTP errors"
    );

    shutdown(addr, handle);
}
