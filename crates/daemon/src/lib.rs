//! # `vhdl1-daemon` — analysis-as-a-service over the VHDL1 engine
//!
//! A dependency-free HTTP/1.1 server (`vhdl1d`) that keeps a pool of warm
//! [`Engine`]s resident and serves the same byte-for-byte JSON reports as
//! `vhdl1c analyze` / `vhdl1c verify` over TCP.  Designed for the serving
//! direction of the roadmap: a long-lived process amortises parsing and
//! closure work across requests through the engine memo tables, and — when
//! configured with [`CachePolicy::Persistent`] — across *restarts* through
//! the disk-backed content-addressed artifact store.
//!
//! ## Endpoints
//!
//! * `POST /analyze` — body is VHDL1 source text (or a corpus manifest with
//!   `--! design` headers); response is the schema-3 batch report JSON,
//!   byte-identical to `vhdl1c analyze --format json` over the same input.
//!   Query parameters: `name` (single-source job name, default `design`),
//!   `smoke` (`1`/`true`), `deadline_ms` (per-request watchdog override).
//! * `POST /verify` — same body, plus `rounds` and `seed` query parameters;
//!   responses match `vhdl1c verify --format json`.
//! * `POST /update` — incremental re-analysis: body is one revised VHDL1
//!   source of the design named by the required `id` query parameter.
//!   Successive updates of an id shard to the same engine and reuse the
//!   per-process artifacts of untouched processes; the report JSON is
//!   byte-identical to `POST /analyze` over the same source.
//! * `GET /healthz` — liveness probe, `200 ok`.
//! * `GET /metrics` — Prometheus text exposition: per-stage counters merged
//!   across all worker engines plus daemon request counters.
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued
//!   connections, then exit.  (Pure-std builds cannot trap SIGTERM, so
//!   drain is an endpoint; see ARCHITECTURE.md.)
//!
//! ## Determinism and cache-key discipline
//!
//! Request handling goes through [`vhdl1_cli::run_batch_on`] against a
//! long-lived engine, so report bytes depend only on the job sources and
//! the engine's analysis options — never on worker count, cache warmth, or
//! request interleaving.  Per-request deadlines ride the *watchdog*
//! (`BatchOptions::deadline_ms`), deliberately not the analysis budget:
//! the budget is part of the cache key, and forking it per request would
//! split otherwise-identical artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use vhdl1_cli::{run_batch_on, run_edit_stream_on, BatchOptions, Format, Job, VerifyOptions};
use vhdl1_corpus::parse_manifest;
use vhdl1_infoflow::{
    fnv1a64, render_prometheus, AnalysisOptions, CachePolicy, Engine, EngineConfig, EngineStats,
    TraceSnapshot,
};

/// Upper bound on the HTTP header block we are willing to buffer.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on a request body (a corpus manifest of a few thousand
/// designs fits comfortably; anything larger is refused with 413).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral port).
    pub listen: String,
    /// Connection-handler threads, each owning one warm [`Engine`]
    /// (requests shard across engines by source content hash).
    pub workers: usize,
    /// Intra-batch worker count handed to the driver pool for manifest
    /// requests (`<= 1` analyzes designs inline).
    pub jobs: usize,
    /// Engine memo-table policy; [`CachePolicy::Persistent`] makes warm
    /// artifacts survive daemon restarts.
    pub cache: CachePolicy,
    /// Analysis options shared by every engine (fixed for the daemon's
    /// lifetime: options are part of the cache key).
    pub analysis: AnalysisOptions,
    /// Default per-request deadline (watchdog), overridable per request
    /// with `?deadline_ms=`.
    pub deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            jobs: 1,
            cache: CachePolicy::Capped(512),
            analysis: AnalysisOptions::default(),
            deadline_ms: None,
        }
    }
}

/// Request counters, one slot per endpoint plus a catch-all.
const ENDPOINTS: [&str; 7] = [
    "analyze", "verify", "update", "healthz", "metrics", "shutdown", "other",
];

struct Shared {
    config: ServerConfig,
    engines: Vec<Engine>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    requests: [AtomicU64; ENDPOINTS.len()],
    panics: AtomicU64,
}

/// A bound, not-yet-running daemon.  [`Server::run`] blocks until a
/// `POST /shutdown` drains the connection queue.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen address and builds the worker engines.  The server
    /// does not accept connections until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let engines = (0..workers)
            .map(|_| {
                Engine::new(EngineConfig {
                    options: config.analysis,
                    cache: config.cache.clone(),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            config,
            engines,
            shutdown: AtomicBool::new(false),
            addr,
            requests: Default::default(),
            panics: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with an ephemeral listen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Accepts connections until a graceful shutdown, dispatching each to a
    /// fixed pool of handler threads.  Returns once every queued connection
    /// has been answered and every handler joined.
    pub fn run(self) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = self.shared.engines.len();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("vhdl1d-{i}"))
                .spawn(move || loop {
                    // Hold the lock only for the recv itself so a slow
                    // request never serialises the other handlers.
                    let stream = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match stream {
                        Ok(stream) => handle_connection(&shared, stream),
                        Err(_) => break, // acceptor dropped the sender: drain done
                    }
                })
                .expect("spawn vhdl1d handler thread");
            handles.push(handle);
        }
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or any later one) is dropped
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue, // transient accept error; keep serving
            }
        }
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        matches!(self.param(name), Some("1") | Some("true"))
    }
}

/// A response ready to serialise: `(status, reason, content-type, body)`.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{message}\n").into_bytes(),
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(request) => {
            // A panicking analysis (e.g. a stale persistent artifact whose
            // source no longer elaborates) must not take the handler thread
            // down: answer 500 and keep serving.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dispatch(shared, &request)
            })) {
                Ok(response) => response,
                Err(_) => {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    Response::error(500, "Internal Server Error", "analysis panicked")
                }
            }
        }
        Err(response) => response,
    };
    write_response(&mut stream, &response);
}

fn dispatch(shared: &Shared, request: &Request) -> Response {
    let endpoint = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/analyze") => 0,
        ("POST", "/verify") => 1,
        ("POST", "/update") => 2,
        ("GET", "/healthz") => 3,
        ("GET", "/metrics") => 4,
        ("POST", "/shutdown") => 5,
        _ => 6,
    };
    shared.requests[endpoint].fetch_add(1, Ordering::Relaxed);
    match endpoint {
        0 => analyze(shared, request, None),
        1 => {
            let rounds = match parse_u64_param(request, "rounds") {
                Ok(v) => v.unwrap_or_else(|| VerifyOptions::default().rounds),
                Err(response) => return response,
            };
            let seed = match parse_u64_param(request, "seed") {
                Ok(v) => v.unwrap_or_else(|| VerifyOptions::default().seed),
                Err(response) => return response,
            };
            analyze(shared, request, Some(VerifyOptions { rounds, seed }))
        }
        2 => update(shared, request),
        3 => Response::ok("text/plain; charset=utf-8", b"ok\n".to_vec()),
        4 => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            metrics(shared).into_bytes(),
        ),
        5 => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // The acceptor is blocked in accept(); poke it awake so it can
            // observe the flag, stop accepting, and drain.
            let _ = TcpStream::connect(shared.addr);
            Response::ok("text/plain; charset=utf-8", b"draining\n".to_vec())
        }
        _ => {
            if matches!(
                request.path.as_str(),
                "/analyze" | "/verify" | "/update" | "/shutdown"
            ) {
                Response::error(405, "Method Not Allowed", "use POST")
            } else if matches!(request.path.as_str(), "/healthz" | "/metrics") {
                Response::error(405, "Method Not Allowed", "use GET")
            } else {
                Response::error(404, "Not Found", "no such endpoint")
            }
        }
    }
}

/// `POST /update` — the incremental re-analysis seam: the body is one
/// revised source of the design named by `?id=`, analyzed through the
/// id-sharded engine's edit workspace.  Successive updates of the same id
/// land on the same engine (sharding is by **id**, not content — each
/// revision's content differs by design) and reuse the per-process
/// artifacts of every process the edit left untouched; the response is the
/// same schema-3 report JSON as `POST /analyze` over that source.
fn update(shared: &Shared, request: &Request) -> Response {
    let source = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    if source.trim().is_empty() {
        return Response::error(400, "Bad Request", "empty body: send VHDL1 source text");
    }
    let Some(id) = request.param("id") else {
        return Response::error(400, "Bad Request", "update needs an `id` query parameter");
    };
    let shard = (fnv1a64(id.as_bytes()) % shared.engines.len() as u64) as usize;
    let jobs = [Job::from_source(id, source)];
    let opts = BatchOptions {
        format: Format::Json,
        ..BatchOptions::default()
    };
    let batch = run_edit_stream_on(&shared.engines[shard], &jobs, &opts);
    Response::ok("application/json", batch.to_json().into_bytes())
}

/// `POST /analyze` and `POST /verify`: body → jobs → warm engine →
/// schema-3 report JSON, byte-identical to the CLI.
fn analyze(shared: &Shared, request: &Request, verify: Option<VerifyOptions>) -> Response {
    let source = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    if source.trim().is_empty() {
        return Response::error(400, "Bad Request", "empty body: send VHDL1 source text");
    }
    let jobs = match jobs_from_body(source, request.param("name").unwrap_or("design")) {
        Ok(jobs) => jobs,
        Err(message) => return Response::error(400, "Bad Request", &message),
    };
    let deadline_ms = match parse_u64_param(request, "deadline_ms") {
        Ok(v) => v.or(shared.config.deadline_ms),
        Err(response) => return response,
    };
    // Content sharding: the same design always lands on the same engine, so
    // its memo entry is reused instead of duplicated across workers.
    let shard = (fnv1a64(jobs[0].source.as_bytes()) % shared.engines.len() as u64) as usize;
    let opts = BatchOptions {
        jobs: shared.config.jobs,
        format: Format::Json,
        smoke: request.flag("smoke"),
        verify,
        deadline_ms,
        ..BatchOptions::default()
    };
    let batch = run_batch_on(&shared.engines[shard], &jobs, &opts);
    Response::ok("application/json", batch.to_json().into_bytes())
}

/// A body is a corpus manifest when it carries `--! design` headers;
/// otherwise it is one bare VHDL1 design.
fn jobs_from_body(source: &str, name: &str) -> Result<Vec<Job>, String> {
    let is_manifest = source
        .lines()
        .any(|line| line.trim_start().starts_with("--!"));
    if !is_manifest {
        return Ok(vec![Job::from_source(name, source)]);
    }
    let designs = parse_manifest(source).map_err(|e| format!("manifest: {e}"))?;
    if designs.is_empty() {
        return Err("manifest contains no designs".to_string());
    }
    Ok(designs.into_iter().map(Job::from_generated).collect())
}

fn parse_u64_param(request: &Request, name: &str) -> Result<Option<u64>, Response> {
    match request.param(name) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| Response {
            status: 400,
            reason: "Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: format!("query parameter `{name}` must be an unsigned integer\n").into_bytes(),
        }),
    }
}

/// Merges stats and trace snapshots across every worker engine and renders
/// the combined Prometheus exposition, plus the daemon's own counters.
fn metrics(shared: &Shared) -> String {
    let mut stats = EngineStats::default();
    let mut snapshot = TraceSnapshot::default();
    for engine in &shared.engines {
        let s = engine.stats();
        stats.frontend += s.frontend;
        stats.rd += s.rd;
        stats.local += s.local;
        stats.specialized += s.specialized;
        stats.global += s.global;
        stats.improved += s.improved;
        stats.flow_graph += s.flow_graph;
        stats.kemmerer += s.kemmerer;
        stats.smoke += s.smoke;
        stats.dynamic_flows += s.dynamic_flows;
        stats.cache_hits += s.cache_hits;
        stats.cache_misses += s.cache_misses;
        stats.store_hits += s.store_hits;
        stats.store_misses += s.store_misses;
        stats.store_writes += s.store_writes;
        stats.units_reused += s.units_reused;
        stats.units_recomputed += s.units_recomputed;
        if let Some(sink) = engine.trace_sink() {
            let shard = sink.snapshot();
            snapshot.spans.extend(shard.spans);
            for (total, part) in snapshot.memo_hits.iter_mut().zip(shard.memo_hits) {
                *total += part;
            }
            snapshot.events.extend(shard.events);
        }
    }
    // Restore the deterministic order the per-engine snapshots had.
    snapshot
        .spans
        .sort_by(|a, b| (a.design.as_str(), a.stage).cmp(&(b.design.as_str(), b.stage)));
    snapshot
        .events
        .sort_by(|a, b| (a.design.as_str(), a.kind).cmp(&(b.design.as_str(), b.kind)));
    let mut out = render_prometheus(&snapshot, &stats);
    out.push_str("# HELP vhdl1d_requests_total Requests handled, by endpoint.\n");
    out.push_str("# TYPE vhdl1d_requests_total counter\n");
    for (name, counter) in ENDPOINTS.iter().zip(&shared.requests) {
        out.push_str(&format!(
            "vhdl1d_requests_total{{endpoint=\"{name}\"}} {}\n",
            counter.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP vhdl1d_request_panics_total Requests answered 500 after a panic.\n");
    out.push_str("# TYPE vhdl1d_request_panics_total counter\n");
    out.push_str(&format!(
        "vhdl1d_request_panics_total {}\n",
        shared.panics.load(Ordering::Relaxed)
    ));
    out
}

/// Reads and parses one HTTP/1.1 request; protocol violations map to the
/// error [`Response`] the caller should answer with.
fn read_request(stream: &mut TcpStream) -> Result<Request, Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(Response::error(
                431,
                "Request Header Fields Too Large",
                "header block exceeds 64 KiB",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Response::error(
                    400,
                    "Bad Request",
                    "connection closed before the header block ended",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(Response::error(408, "Request Timeout", "read timed out")),
        }
    };
    let header_text = match std::str::from_utf8(&buf[..header_end]) {
        Ok(text) => text,
        Err(_) => return Err(Response::error(400, "Bad Request", "header is not UTF-8")),
    };
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Err(Response::error(
            400,
            "Bad Request",
            "malformed request line",
        ));
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    Response::error(400, "Bad Request", "unparseable Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(
            413,
            "Payload Too Large",
            "body exceeds 16 MiB",
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Response::error(
                    400,
                    "Bad Request",
                    "connection closed mid-body",
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(Response::error(408, "Request Timeout", "read timed out")),
        }
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    // A peer that hung up mid-response is its own problem; never panic here.
    if stream.write_all(head.as_bytes()).is_ok() {
        let _ = stream.write_all(&response.body);
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn manifest_bodies_become_manifest_jobs() {
        let single = jobs_from_body("entity e is end;", "alpha").unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].name, "alpha");
        assert!(single[0].truth.is_none());
        assert!(jobs_from_body("--! design broken", "x").is_err());
    }
}
