//! `vhdl1d` — the VHDL1 information-flow analysis daemon.
//!
//! ```text
//! vhdl1d --listen 127.0.0.1:7411 --workers 4 --cache-dir /var/cache/vhdl1
//! curl -sS -X POST --data-binary @design.vhd 'http://127.0.0.1:7411/analyze?name=design'
//! ```

use vhdl1_daemon::{Server, ServerConfig};
use vhdl1_infoflow::{Budget, CachePolicy};

const USAGE: &str = "\
vhdl1d - VHDL1 information-flow analysis daemon

USAGE:
    vhdl1d [OPTIONS]

OPTIONS:
      --listen ADDR     bind address (default 127.0.0.1:7411; port 0 is ephemeral)
      --workers N       connection handlers / warm engines (default: CPU count)
      --jobs N          driver pool width for manifest batches (default 1)
      --cache-dir DIR   persistent artifact cache directory (warm across restarts)
      --cache-cap N     artifact cap of the persistent cache (default 4096)
      --deadline-ms MS  default per-request watchdog deadline
      --budget NAME     resource budget: tight | standard | unlimited
      --base            base closure only (no incoming/outgoing nodes)
      --no-trace        disable stage tracing (shrinks /metrics)
      --help            print this help

ENDPOINTS:
    POST /analyze   VHDL1 source or corpus manifest -> batch report JSON
    POST /verify    like /analyze plus dynamic flow witnessing (?rounds=&seed=)
    POST /update    incremental re-analysis of one design (?id= routes revisions
                    to the same warm engine so unchanged processes are reused)
    GET  /healthz   liveness probe
    GET  /metrics   Prometheus text exposition
    POST /shutdown  graceful drain (std cannot trap SIGTERM)
";

fn main() {
    match parse_args(std::env::args().skip(1).collect()) {
        Ok(Some(config)) => {
            let server = match Server::bind(config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("vhdl1d: cannot bind: {e}");
                    std::process::exit(1);
                }
            };
            println!("vhdl1d listening on {}", server.local_addr());
            if let Err(e) = server.run() {
                eprintln!("vhdl1d: {e}");
                std::process::exit(1);
            }
        }
        Ok(None) => print!("{USAGE}"),
        Err(message) => {
            eprintln!("vhdl1d: {message}");
            eprintln!("run `vhdl1d --help` for usage");
            std::process::exit(1);
        }
    }
}

/// Parses argv; `Ok(None)` means `--help` was requested.
fn parse_args(mut args: Vec<String>) -> Result<Option<ServerConfig>, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(None);
    }
    let mut config = ServerConfig {
        listen: "127.0.0.1:7411".to_string(),
        workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
        ..ServerConfig::default()
    };
    // Stage tracing is observability-only: it is excluded from the cache
    // fingerprint and never changes a report byte, so the daemon defaults
    // it on to keep /metrics informative.
    config.analysis.trace = true;
    if let Some(addr) = take_value(&mut args, "--listen")? {
        config.listen = addr;
    }
    if let Some(n) = take_value(&mut args, "--workers")? {
        config.workers = n
            .parse()
            .map_err(|_| format!("--workers expects a count, got `{n}`"))?;
    }
    if let Some(n) = take_value(&mut args, "--jobs")? {
        config.jobs = n
            .parse()
            .map_err(|_| format!("--jobs expects a count, got `{n}`"))?;
    }
    let mut cache_cap = vhdl1_cli::driver::DEFAULT_PERSISTENT_CACHE_CAP;
    if let Some(n) = take_value(&mut args, "--cache-cap")? {
        cache_cap = n
            .parse()
            .map_err(|_| format!("--cache-cap expects a count, got `{n}`"))?;
    }
    if let Some(dir) = take_value(&mut args, "--cache-dir")? {
        config.cache = CachePolicy::Persistent {
            dir: dir.into(),
            cap: cache_cap,
        };
    }
    if let Some(ms) = take_value(&mut args, "--deadline-ms")? {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms expects milliseconds, got `{ms}`"))?;
        config.deadline_ms = Some(ms);
    }
    if let Some(name) = take_value(&mut args, "--budget")? {
        config.analysis.budget = Budget::preset(&name)
            .ok_or_else(|| format!("unknown budget `{name}` (tight, standard, unlimited)"))?;
    }
    if take_flag(&mut args, "--base") {
        config.analysis.improved = false;
    }
    if take_flag(&mut args, "--no-trace") {
        config.analysis.trace = false;
    }
    if let Some(unknown) = args.first() {
        return Err(format!("unknown argument `{unknown}`"));
    }
    Ok(Some(config))
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} expects a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        return Ok(Some(value));
    }
    Ok(None)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        return true;
    }
    false
}
