//! `cargo run -p xtask -- <task>` — repository automation.
//!
//! ## `bench-gate`
//!
//! The CI perf-regression gate: compares a freshly produced
//! `BENCH_alfp.json` (written by `cargo bench -p bench --bench scaling`)
//! against the committed `BENCH_baseline.json` and fails when any workload
//! series regressed beyond the tolerance.
//!
//! ```console
//! $ cargo run -p xtask -- bench-gate \
//!       --baseline BENCH_baseline.json --current BENCH_alfp.json \
//!       --tolerance 25
//! ```
//!
//! CI runners and developer machines differ wildly in absolute speed, so a
//! committed nanosecond baseline cannot be compared directly.  The gate
//! therefore **rescales by machine speed** before judging: it computes the
//! per-point ratio `current / baseline` for every `(workload, size)` pair,
//! takes the median ratio across *all* points as the machine-speed factor,
//! and flags a series only when its own median ratio exceeds
//! `factor * (1 + tolerance)`.  A uniform 2× slower runner passes; one
//! series slowing down while the rest hold steady fails.  Pass
//! `--no-rescale` to compare absolute medians (useful when baseline and
//! current come from the same machine).
//!
//! **Re-baselining** (after an intentional perf change): run the bench and
//! copy the fresh summary over the committed baseline —
//! `cargo bench -p bench --bench scaling && cp BENCH_alfp.json
//! BENCH_baseline.json` — and commit it together with the change that
//! shifted the numbers.
//!
//! Series present only in the current summary are reported as informational
//! (new workloads need no baseline); series that *disappear* from the
//! current summary fail the gate, so a bench refactor cannot silently drop
//! coverage.
//!
//! ## `dynflow-series`
//!
//! Folds a `vhdl1c verify` JSON report into the bench summary as a
//! `dynflow_coverage` series point:
//!
//! ```console
//! $ cargo run -p xtask -- dynflow-series \
//!       --report verify_report.json --out BENCH_alfp.json
//! ```
//!
//! The point records the corpus size, the dynamically covered / total static
//! flow-graph edge counts, and the coverage in permille.  Its `median_ns`
//! field is the *uncovered* edge count plus one, which makes the ordinary
//! `bench-gate` machinery double as a coverage-regression gate: dynamic
//! coverage decaying between a committed baseline and a fresh nightly run
//! shows up as a "regressed" series, exactly like a slow benchmark.
//!
//! ## `profile-series`
//!
//! Folds the deterministic counters of a `vhdl1c analyze --profile=FILE`
//! profile document into the bench summary:
//!
//! ```console
//! $ cargo run -p xtask -- profile-series \
//!       --profile profile.json --out BENCH_alfp.json
//! ```
//!
//! Three series are appended, each encoding its counter (plus one) as
//! `median_ns` so `bench-gate` flags *increases* as regressions:
//!
//! * `profile_stage_runs` — total stage computations across the batch: a
//!   rise at a fixed corpus means memoization or dedup got less effective;
//! * `profile_cache_misses` — engine source-cache misses (cache
//!   effectiveness);
//! * `profile_graph_edges` — flow-graph edges built (`items` of the
//!   `flow_graph` stage): a proxy for analysis work and precision drift.
//!
//! Only the profile's single-line `"deterministic"` section is read; every
//! wall-clock field is ignored by construction.
//!
//! ## `edit-series`
//!
//! Folds the incremental-reuse counters of a `vhdl1c edit-stream
//! --profile=FILE` profile document into the bench summary:
//!
//! ```console
//! $ cargo run -p xtask -- edit-series \
//!       --profile edit_profile.json --out BENCH_alfp.json
//! ```
//!
//! The `incremental_edit` point records how many process units the edit
//! replay *recomputed* (encoded as `median_ns`, plus one), so any decay in
//! per-process reuse — an edit suddenly recomputing untouched processes —
//! trips the ordinary `bench-gate` once baselined.  Profiles with zero
//! reused units are rejected: they mean the incremental path never ran and
//! would gate nothing.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-gate") => bench_gate(&args[1..]),
        Some("dynflow-series") => dynflow_series(&args[1..]),
        Some("profile-series") => profile_series(&args[1..]),
        Some("store-series") => store_series(&args[1..]),
        Some("edit-series") => edit_series(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:\n  cargo run -p xtask -- bench-gate --baseline <file> --current <file> \\\n      [--tolerance <percent>] [--no-rescale]\n  cargo run -p xtask -- dynflow-series --report <verify.json> --out <file>\n  cargo run -p xtask -- profile-series --profile <profile.json> --out <file>\n  cargo run -p xtask -- store-series --warm <profile.json> --out <file>\n  cargo run -p xtask -- edit-series --profile <profile.json> --out <file>";

fn bench_gate(args: &[String]) -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut tolerance = 25.0f64;
    let mut rescale = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--current" => current_path = it.next().cloned(),
            "--tolerance" => {
                tolerance = match it.next().and_then(|t| t.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--tolerance needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--no-rescale" => rescale = false,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<Vec<BenchPoint>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_points(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match load(&baseline_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match load(&current_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = compare(&baseline, &current, tolerance, rescale);
    print!("{}", outcome.render());
    if outcome.failed_series.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn dynflow_series(args: &[String]) -> ExitCode {
    let mut report_path = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => report_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(report_path), Some(out_path)) = (report_path, out_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let report = match std::fs::read_to_string(&report_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {report_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let point = match coverage_point(&report) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {report_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = append_point(&existing, &point);
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("dynflow-series: appended to {out_path}: {point}");
    ExitCode::SUCCESS
}

fn profile_series(args: &[String]) -> ExitCode {
    let mut profile_path = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(profile_path), Some(out_path)) = (profile_path, out_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let profile = match std::fs::read_to_string(&profile_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let points = match profile_points(&profile) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut merged = std::fs::read_to_string(&out_path).unwrap_or_default();
    for point in &points {
        merged = append_point(&merged, point);
        println!("profile-series: appended to {out_path}: {point}");
    }
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn store_series(args: &[String]) -> ExitCode {
    let mut warm_path = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--warm" => warm_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(warm_path), Some(out_path)) = (warm_path, out_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let warm = match std::fs::read_to_string(&warm_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {warm_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let point = match store_point(&warm) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {warm_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = append_point(&existing, &point);
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("store-series: appended to {out_path}: {point}");
    ExitCode::SUCCESS
}

fn edit_series(args: &[String]) -> ExitCode {
    let mut profile_path = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(profile_path), Some(out_path)) = (profile_path, out_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let profile = match std::fs::read_to_string(&profile_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let point = match edit_point(&profile) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = append_point(&existing, &point);
    if let Err(e) = std::fs::write(&out_path, &merged) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("edit-series: appended to {out_path}: {point}");
    ExitCode::SUCCESS
}

/// Builds the `incremental_edit` bench point from the profile of a
/// `vhdl1c edit-stream --profile=FILE` replay.  The point's value is the
/// number of process units the replay recomputed — on a cold engine
/// exactly the base design plus one process per edit — so reuse decay
/// (an edit invalidating untouched processes) trips `bench-gate` once
/// baselined.  Rejects profiles that reused nothing (`units_reused ==
/// 0`): those mean the incremental path never ran and gate nothing.
fn edit_point(profile: &str) -> Result<String, String> {
    let engine_line = profile
        .lines()
        .find(|l| l.trim_start().starts_with("\"engine\""))
        .ok_or("missing engine section")?;
    let reused = field_after(engine_line, "\"engine\"", "units_reused")?;
    if reused == 0 {
        return Err(
            "profile reused no units; was this produced by `vhdl1c edit-stream --profile=FILE`?"
                .into(),
        );
    }
    let recomputed = field_after(engine_line, "\"engine\"", "units_recomputed")?;
    let det_line = profile
        .lines()
        .find(|l| l.trim_start().starts_with("\"deterministic\""))
        .ok_or("missing deterministic section")?;
    let revisions = field_after(det_line, "\"deterministic\"", "jobs")?;
    Ok(format!(
        "{{\"workload\": \"incremental_edit\", \"size\": {revisions}, \
         \"reused\": {reused}, \"value\": {recomputed}, \"median_ns\": {}}}",
        recomputed + 1
    ))
}

/// Builds the `persistent_warm_cold` bench point from the profile of a
/// **warm** `--cache-dir` rerun.  The point's value is the number of
/// engine stage computations the warm run still performed — zero when the
/// artifact store serves every design — so any recomputation creep trips
/// `bench-gate` once baselined.  Rejects profiles that never touched the
/// store (`store_hits == 0`): those would gate nothing.
fn store_point(profile: &str) -> Result<String, String> {
    let engine_line = profile
        .lines()
        .find(|l| l.trim_start().starts_with("\"engine\""))
        .ok_or("missing engine section")?;
    let field = |name: &str| field_after(engine_line, "\"engine\"", name);
    let hits = field("store_hits")?;
    if hits == 0 {
        return Err("warm profile has no store hits; was --cache-dir set on both runs?".into());
    }
    let recomputed = field("frontend")?
        + field("rd")?
        + field("local")?
        + field("specialized")?
        + field("global")?
        + field("improved")?
        + field("flow_graph")?
        + field("kemmerer")?;
    let det_line = profile
        .lines()
        .find(|l| l.trim_start().starts_with("\"deterministic\""))
        .ok_or("missing deterministic section")?;
    let jobs = field_after(det_line, "\"deterministic\"", "jobs")?;
    Ok(format!(
        "{{\"workload\": \"persistent_warm_cold\", \"size\": {jobs}, \
         \"value\": {recomputed}, \"median_ns\": {}}}",
        recomputed + 1
    ))
}

/// Extracts a named `"field": <integer>` occurring after `anchor` in
/// `text`.
fn field_after(text: &str, anchor: &str, name: &str) -> Result<u64, String> {
    let scoped = text
        .find(anchor)
        .map(|at| &text[at..])
        .ok_or_else(|| format!("missing `{anchor}`"))?;
    let at = scoped
        .find(&format!("\"{name}\""))
        .ok_or_else(|| format!("missing field `{name}` after `{anchor}`"))?;
    scoped[at..]
        .split_once(':')
        .and_then(|(_, rest)| {
            rest.trim_start()
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .ok_or_else(|| format!("field `{name}` after `{anchor}` is not an integer"))
}

/// Builds the deterministic bench points of a profile document.  Reads only
/// the single-line `"deterministic"` section; each counter is encoded as
/// `median_ns` (plus one, so a zero counter still yields a valid point) and
/// an increase therefore registers as a regression in `bench-gate`.
fn profile_points(profile: &str) -> Result<Vec<String>, String> {
    let det_line = profile
        .lines()
        .find(|l| l.trim_start().starts_with("\"deterministic\""))
        .ok_or("missing deterministic section")?;
    let jobs = field_after(det_line, "\"deterministic\"", "jobs")?;
    let misses = field_after(det_line, "\"deterministic\"", "cache_misses")?;
    let stages = det_line
        .find("\"stages\"")
        .map(|at| &det_line[at..])
        .ok_or("deterministic section carries no stages (profile collected without spans?)")?;
    let mut runs = 0u64;
    let mut rest = stages;
    while let Some(at) = rest.find("\"runs\"") {
        rest = &rest[at..];
        runs += field_after(rest, "\"runs\"", "runs")?;
        rest = &rest["\"runs\"".len()..];
    }
    let edges = field_after(stages, "\"flow_graph\"", "items")?;
    let point = |workload: &str, value: u64| {
        format!(
            "{{\"workload\": \"{workload}\", \"size\": {jobs}, \
             \"value\": {value}, \"median_ns\": {}}}",
            value + 1
        )
    };
    Ok(vec![
        point("profile_stage_runs", runs),
        point("profile_cache_misses", misses),
        point("profile_graph_edges", edges),
    ])
}

/// Extracts a named `"field": <integer>` from the summary of a `vhdl1c`
/// verify report.  Searches after the `"summary"` key: the report also has
/// a top-level `"designs"` *array*, which must not shadow the count.
fn summary_field(report: &str, name: &str) -> Result<u64, String> {
    let summary = report
        .find("\"summary\"")
        .map(|at| &report[at..])
        .ok_or("missing summary object")?;
    let at = summary
        .find(&format!("\"{name}\""))
        .ok_or_else(|| format!("missing summary field `{name}`"))?;
    summary[at..]
        .split_once(':')
        .and_then(|(_, rest)| {
            rest.trim_start()
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .ok_or_else(|| format!("summary field `{name}` is not an integer"))
}

/// Builds the `dynflow_coverage` bench point from a verify report.  The
/// `median_ns` field encodes uncovered edges + 1 so `bench-gate` flags
/// coverage decay as a regression.
fn coverage_point(report: &str) -> Result<String, String> {
    let designs = summary_field(report, "designs")?;
    let covered = summary_field(report, "dynflow_covered_edges")?;
    let total = summary_field(report, "dynflow_static_edges")?;
    if covered > total {
        return Err(format!("covered {covered} exceeds total {total}"));
    }
    let permille = (covered * 1000).checked_div(total).unwrap_or(1000);
    Ok(format!(
        "{{\"workload\": \"dynflow_coverage\", \"size\": {designs}, \
         \"covered_edges\": {covered}, \"static_edges\": {total}, \
         \"coverage_permille\": {permille}, \"median_ns\": {}}}",
        total - covered + 1
    ))
}

/// Appends a point object to a flat JSON array document, creating the array
/// when `existing` is empty.
fn append_point(existing: &str, point: &str) -> String {
    let body = existing.trim();
    let Some(stripped) = body.strip_suffix(']') else {
        return format!("[\n  {point}\n]\n");
    };
    let inner = stripped.trim_end();
    let sep = if inner.ends_with('[') { "" } else { "," };
    format!("{inner}{sep}\n  {point}\n]\n")
}

/// One `(workload, size)` measurement of a bench summary.
#[derive(Debug, Clone, PartialEq)]
struct BenchPoint {
    workload: String,
    size: u64,
    median_ns: u128,
}

/// Parses the flat-object array `scaling` writes (`BENCH_alfp.json`).
/// Deliberately minimal: the format is produced by this repository's own
/// bench, not by arbitrary tools.
fn parse_points(text: &str) -> Result<Vec<BenchPoint>, String> {
    let mut points = Vec::new();
    for (i, obj) in text.split('{').skip(1).enumerate() {
        let obj = obj
            .split('}')
            .next()
            .ok_or_else(|| format!("object {i}: unterminated"))?;
        let field = |name: &str| -> Option<&str> {
            let at = obj.find(&format!("\"{name}\""))?;
            let rest = obj[at..].split_once(':')?.1;
            Some(rest.split(',').next().unwrap_or(rest).trim())
        };
        let workload = field("workload")
            .ok_or_else(|| format!("object {i}: missing workload"))?
            .trim_matches('"')
            .to_string();
        let size: u64 = field("size")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("object {i}: bad size"))?;
        let median_ns: u128 = field("median_ns")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("object {i}: bad median_ns"))?;
        points.push(BenchPoint {
            workload,
            size,
            median_ns,
        });
    }
    if points.is_empty() {
        return Err("no bench points found".into());
    }
    Ok(points)
}

#[derive(Debug, Default)]
struct GateOutcome {
    /// Per-series verdict lines, in workload order.
    lines: Vec<String>,
    /// Workloads that regressed beyond tolerance or went missing.
    failed_series: Vec<String>,
    machine_factor: f64,
    tolerance: f64,
}

impl GateOutcome {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench gate: machine-speed factor {:.3}, tolerance {:.0}%\n",
            self.machine_factor, self.tolerance
        ));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.failed_series.is_empty() {
            out.push_str("bench gate: OK\n");
        } else {
            out.push_str(&format!(
                "bench gate: FAILED ({})\n",
                self.failed_series.join(", ")
            ));
        }
        out
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
    values[values.len() / 2]
}

/// Judges `current` against `baseline`: per-point ratios, optional global
/// machine-speed rescale, per-series median compared against the tolerance.
fn compare(
    baseline: &[BenchPoint],
    current: &[BenchPoint],
    tolerance_pct: f64,
    rescale: bool,
) -> GateOutcome {
    let current_by_key: BTreeMap<(&str, u64), u128> = current
        .iter()
        .map(|p| ((p.workload.as_str(), p.size), p.median_ns))
        .collect();

    // Per-series point ratios (baseline order preserved).
    let mut series: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut missing: Vec<String> = Vec::new();
    let mut all_ratios: Vec<f64> = Vec::new();
    for p in baseline {
        match current_by_key.get(&(p.workload.as_str(), p.size)) {
            Some(&cur) => {
                let ratio = cur as f64 / (p.median_ns.max(1)) as f64;
                series.entry(&p.workload).or_default().push(ratio);
                all_ratios.push(ratio);
            }
            None => {
                if !missing.contains(&p.workload) {
                    missing.push(p.workload.clone());
                }
            }
        }
    }

    let machine_factor = if rescale && !all_ratios.is_empty() {
        median(&mut all_ratios.clone())
    } else {
        1.0
    };
    let allowed = machine_factor * (1.0 + tolerance_pct / 100.0);

    let mut outcome = GateOutcome {
        machine_factor,
        tolerance: tolerance_pct,
        ..GateOutcome::default()
    };
    for (workload, ratios) in &series {
        let r = median(&mut ratios.clone());
        let verdict = if r > allowed { "REGRESSED" } else { "ok" };
        outcome.lines.push(format!(
            "  {workload:<26} median ratio {r:>7.3} (allowed {allowed:.3})  {verdict}"
        ));
        if r > allowed {
            outcome.failed_series.push((*workload).to_string());
        }
    }
    for workload in missing {
        outcome
            .lines
            .push(format!("  {workload:<26} MISSING from current summary"));
        outcome.failed_series.push(workload);
    }
    // Purely informational: new series have no baseline yet.
    let baseline_workloads: Vec<&str> = baseline.iter().map(|p| p.workload.as_str()).collect();
    let mut seen_new: Vec<&str> = Vec::new();
    for p in current {
        if !baseline_workloads.contains(&p.workload.as_str())
            && !seen_new.contains(&p.workload.as_str())
        {
            seen_new.push(&p.workload);
            outcome
                .lines
                .push(format!("  {:<26} new series (no baseline)", p.workload));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(&str, u64, u128)]) -> Vec<BenchPoint> {
        raw.iter()
            .map(|(w, s, m)| BenchPoint {
                workload: w.to_string(),
                size: *s,
                median_ns: *m,
            })
            .collect()
    }

    #[test]
    fn parses_the_scaling_summary_format() {
        let text = r#"[
  {"workload": "chain_tc", "size": 32, "tuples": 561, "median_ns": 181632},
  {"workload": "rd_dense", "size": 1, "tuples": 519, "median_ns": 2740}
]
"#;
        let points = parse_points(text).unwrap();
        assert_eq!(
            points,
            pts(&[("chain_tc", 32, 181632), ("rd_dense", 1, 2740)])
        );
        assert!(parse_points("[]").is_err());
        assert!(parse_points(r#"[{"workload": "x", "size": 1}]"#).is_err());
    }

    #[test]
    fn identical_summaries_pass() {
        let b = pts(&[("a", 1, 1000), ("a", 2, 2000), ("b", 1, 500)]);
        let out = compare(&b, &b, 25.0, true);
        assert!(out.failed_series.is_empty(), "{}", out.render());
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let b = pts(&[("a", 1, 1000), ("a", 2, 2000), ("b", 1, 500), ("c", 3, 900)]);
        // Series `b` regressed 2x; the others hold, so rescaling cannot
        // hide it.
        let c = pts(&[
            ("a", 1, 1000),
            ("a", 2, 2000),
            ("b", 1, 1000),
            ("c", 3, 900),
        ]);
        let out = compare(&b, &c, 25.0, true);
        assert_eq!(out.failed_series, vec!["b".to_string()], "{}", out.render());
        // Within tolerance passes.
        let c = pts(&[("a", 1, 1000), ("a", 2, 2000), ("b", 1, 600), ("c", 3, 900)]);
        let out = compare(&b, &c, 25.0, true);
        assert!(out.failed_series.is_empty(), "{}", out.render());
    }

    #[test]
    fn uniformly_slower_machines_pass_with_rescale_and_fail_without() {
        let b = pts(&[("a", 1, 1000), ("b", 1, 500), ("c", 3, 900)]);
        let c = pts(&[("a", 1, 3000), ("b", 1, 1500), ("c", 3, 2700)]);
        let rescaled = compare(&b, &c, 25.0, true);
        assert!(rescaled.failed_series.is_empty(), "{}", rescaled.render());
        let absolute = compare(&b, &c, 25.0, false);
        assert_eq!(absolute.failed_series.len(), 3, "{}", absolute.render());
    }

    #[test]
    fn coverage_point_encodes_uncovered_edges_as_median() {
        let report = r#"{
  "summary": {
    "designs": 200,
    "dynflow_covered_edges": 2700,
    "dynflow_static_edges": 2774,
    "cache_hits": 0
  }
}"#;
        let point = coverage_point(report).unwrap();
        assert!(point.contains("\"workload\": \"dynflow_coverage\""));
        assert!(point.contains("\"size\": 200"));
        assert!(point.contains("\"covered_edges\": 2700"));
        assert!(point.contains("\"coverage_permille\": 973"));
        // 74 uncovered edges + 1.
        assert!(point.contains("\"median_ns\": 75"));
        // The emitted point round-trips through the gate's own parser.
        let parsed = parse_points(&format!("[{point}]")).unwrap();
        assert_eq!(parsed, pts(&[("dynflow_coverage", 200, 75)]));
        // Edgeless reports count as fully covered; inconsistent ones error.
        let empty = coverage_point(
            "{\"summary\": {\"designs\": 1, \"dynflow_covered_edges\": 0, \
             \"dynflow_static_edges\": 0}}",
        )
        .unwrap();
        assert!(empty.contains("\"coverage_permille\": 1000"));
        assert!(coverage_point(
            "{\"summary\": {\"designs\": 1, \"dynflow_covered_edges\": 2, \
             \"dynflow_static_edges\": 1}}"
        )
        .is_err());
        assert!(coverage_point("{}").is_err());
    }

    #[test]
    fn profile_points_read_only_the_deterministic_line() {
        let profile = r#"{
  "tool": "vhdl1c-profile",
  "schema": 1,
  "deterministic": {"jobs": 25, "unique_jobs": 25, "cache_hits": 0, "cache_misses": 25, "stages": {"frontend": {"runs": 25, "memo_hits": 0, "work": 100, "items": 50}, "rd": {"runs": 25, "memo_hits": 3, "work": 7, "items": 7}, "flow_graph": {"runs": 25, "memo_hits": 0, "work": 40, "items": 123}}},
  "wall_ns": 99999,
  "stages": [
    {"stage": "frontend", "runs": 7777, "wall_ns": 1}
  ]
}"#;
        let points = profile_points(profile).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].contains("\"workload\": \"profile_stage_runs\""));
        assert!(points[0].contains("\"size\": 25"));
        // 25 + 25 + 25 runs from the deterministic line — the wall-clock
        // `"stages"` array below it (with its decoy 7777) is never read.
        assert!(points[0].contains("\"value\": 75"), "{}", points[0]);
        assert!(points[0].contains("\"median_ns\": 76"));
        assert!(points[1].contains("\"workload\": \"profile_cache_misses\""));
        assert!(points[1].contains("\"median_ns\": 26"));
        assert!(points[2].contains("\"workload\": \"profile_graph_edges\""));
        assert!(points[2].contains("\"value\": 123"));
        // The emitted points round-trip through the gate's parser.
        let all = format!("[{}]", points.join(", "));
        assert_eq!(
            parse_points(&all).unwrap(),
            pts(&[
                ("profile_stage_runs", 25, 76),
                ("profile_cache_misses", 25, 26),
                ("profile_graph_edges", 25, 124),
            ])
        );
        assert!(profile_points("{}").is_err());
        assert!(
            profile_points("{\n  \"deterministic\": {\"jobs\": 1, \"cache_misses\": 0}\n}")
                .is_err(),
            "a stage-less profile must be rejected, not silently zeroed"
        );
    }

    #[test]
    fn store_point_measures_warm_recomputation() {
        let warm = r#"{
  "tool": "vhdl1c-profile",
  "deterministic": {"jobs": 25, "unique_jobs": 25, "cache_hits": 0, "cache_misses": 25},
  "engine": {"frontend": 0, "rd": 0, "local": 0, "specialized": 0, "global": 0, "improved": 0, "flow_graph": 0, "kemmerer": 0, "smoke": 0, "dynamic_flows": 0, "cache_hits": 0, "cache_misses": 25, "store_hits": 25, "store_misses": 0, "store_writes": 0},
  "wall_ns": 1
}"#;
        let point = store_point(warm).unwrap();
        assert!(point.contains("\"workload\": \"persistent_warm_cold\""));
        assert!(point.contains("\"size\": 25"));
        assert!(point.contains("\"value\": 0"));
        assert!(point.contains("\"median_ns\": 1"));
        assert_eq!(
            parse_points(&format!("[{point}]")).unwrap(),
            pts(&[("persistent_warm_cold", 25, 1)])
        );
        // A warm run that still recomputed registers a non-zero value...
        let leaky = warm.replace("\"frontend\": 0, \"rd\": 0", "\"frontend\": 3, \"rd\": 2");
        assert!(store_point(&leaky).unwrap().contains("\"value\": 5"));
        // ...and a run that never hit the store gates nothing: reject it.
        let cold = warm.replace("\"store_hits\": 25", "\"store_hits\": 0");
        assert!(store_point(&cold).is_err());
        assert!(store_point("{}").is_err());
    }

    #[test]
    fn edit_point_measures_recomputed_units() {
        // Engine line of a cold 8-process / 4-edit replay: the base run
        // computes all 8 units, each edit recomputes exactly one.
        let profile = r#"{
  "tool": "vhdl1c-profile",
  "deterministic": {"jobs": 5, "unique_jobs": 5, "cache_hits": 0, "cache_misses": 5},
  "engine": {"frontend": 5, "rd": 5, "local": 5, "specialized": 0, "global": 5, "improved": 5, "flow_graph": 5, "kemmerer": 5, "smoke": 0, "dynamic_flows": 0, "cache_hits": 0, "cache_misses": 5, "store_hits": 0, "store_misses": 0, "store_writes": 0, "units_reused": 28, "units_recomputed": 12},
  "wall_ns": 1
}"#;
        let point = edit_point(profile).unwrap();
        assert!(point.contains("\"workload\": \"incremental_edit\""));
        assert!(point.contains("\"size\": 5"));
        assert!(point.contains("\"reused\": 28"));
        assert!(point.contains("\"value\": 12"));
        assert!(point.contains("\"median_ns\": 13"));
        assert_eq!(
            parse_points(&format!("[{point}]")).unwrap(),
            pts(&[("incremental_edit", 5, 13)])
        );
        // A profile that reused nothing (plain `analyze`, or a replay with
        // the cache disabled) gates nothing: reject it.
        let cold = profile.replace("\"units_reused\": 28", "\"units_reused\": 0");
        assert!(edit_point(&cold).is_err());
        assert!(edit_point("{}").is_err());
    }

    #[test]
    fn append_point_grows_an_array_in_place() {
        let fresh = append_point("", "{\"workload\": \"x\", \"size\": 1, \"median_ns\": 2}");
        assert_eq!(
            fresh,
            "[\n  {\"workload\": \"x\", \"size\": 1, \"median_ns\": 2}\n]\n"
        );
        let grown = append_point(
            &fresh,
            "{\"workload\": \"y\", \"size\": 2, \"median_ns\": 3}",
        );
        assert_eq!(
            parse_points(&grown).unwrap(),
            pts(&[("x", 1, 2), ("y", 2, 3)])
        );
        // Appending to an empty array does not leave a leading comma.
        let from_empty = append_point("[]", "{\"workload\": \"z\", \"size\": 1, \"median_ns\": 1}");
        assert_eq!(parse_points(&from_empty).unwrap(), pts(&[("z", 1, 1)]));
    }

    #[test]
    fn missing_series_fail_and_new_series_inform() {
        let b = pts(&[("a", 1, 1000), ("gone", 1, 10)]);
        let c = pts(&[("a", 1, 1000), ("fresh", 1, 10)]);
        let out = compare(&b, &c, 25.0, true);
        assert_eq!(out.failed_series, vec!["gone".to_string()]);
        assert!(out.render().contains("fresh"), "{}", out.render());
        assert!(out.render().contains("new series"), "{}", out.render());
    }
}
