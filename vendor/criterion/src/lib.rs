//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds hermetically (no crates.io), so this crate provides
//! the subset of criterion's API the benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — backed by a simple wall-clock
//! sampler.  Each benchmark is warmed up, then timed for `sample_size`
//! samples of an automatically chosen iteration count; the median, mean and
//! minimum per-iteration times are printed in a stable, greppable format:
//!
//! ```text
//! group/name              median   12.345 µs   mean   12.400 µs   min   12.100 µs
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to the `criterion_group!` benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// supported by the stand-in, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier for a parameterised benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs a benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Conversion helper so `bench_function` accepts both `&str` and
/// [`BenchmarkId`] like the real criterion does.
#[derive(Debug)]
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of an iteration count
    /// chosen so each sample runs for roughly 10 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / estimate.as_nanos()).clamp(1, 100_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<30} (no samples collected)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{}/{:<40} median {:>12}   mean {:>12}   min {:>12}",
            group,
            id,
            format_duration(median),
            format_duration(mean),
            format_duration(min)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_like_criterion() {
        let id: BenchId = BenchmarkId::new("solve", 64).into();
        assert_eq!(id.0, "solve/64");
        let id: BenchId = "plain".into();
        assert_eq!(id.0, "plain");
    }

    #[test]
    fn sampler_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self_test");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
