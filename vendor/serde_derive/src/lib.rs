//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds in a hermetic environment without access to
//! crates.io, and nothing in it actually serialises data — the
//! `#[derive(Serialize, Deserialize)]` attributes on the analysis types only
//! exist so downstream users *could* plug in real serde.  These derives
//! therefore expand to nothing; swapping in the real crates later is a
//! one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
