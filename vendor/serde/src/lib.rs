//! Offline stand-in for the `serde` facade crate.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize}`
//! plus the derive macros to compile: the traits are empty markers and the
//! derives expand to nothing (see `serde_derive`).  The workspace never
//! serialises data; the derives document intent and keep the door open for
//! the real crates.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
