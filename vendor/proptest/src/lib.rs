//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset of the API the workspace's property tests use:
//! the [`Strategy`] trait, range strategies over integers,
//! `prop::sample::select`, `prop::collection::vec`, and the `proptest!`,
//! `prop_assert!` / `prop_assert_eq!` macros.  Values are drawn from a
//! deterministic splitmix64 generator seeded from the test name, so runs are
//! reproducible; each property is exercised for a fixed number of cases.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with a seed derived from `name` (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy, mirroring `Strategy::prop_flat_map`:
    /// each draw samples `self` first and then the strategy `f` builds from
    /// that value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, G 5);
}

/// Strategy producing a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies, produced by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; each draw picks one uniformly.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy)),+])
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is exercised for.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128 - start as u128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        rng.next_u64() as $t
                    } else {
                        start + (rng.below(span) as $t)
                    }
                }
            }
        )*
    };
}

int_range_strategies!(u8, u16, u32, u64, usize);

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Strategies producing `Option` values.
pub mod option {
    use crate::{Strategy, TestRng};

    /// Strategy producing `Some` with a fixed probability.
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Map the top 53 bits to a uniform float in [0, 1).
            let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (draw < self.probability).then(|| self.inner.sample(rng))
        }
    }

    /// `Some(value)` with probability `probability`, `None` otherwise,
    /// mirroring `proptest::option::weighted`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        Weighted { probability, inner }
    }
}

/// Strategies drawing from explicit value collections.
pub mod sample {
    use crate::{Strategy, TestRng};

    /// Strategy selecting uniformly from a vector of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy producing vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::Just;
    pub use crate::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each function is run for a fixed number of
/// deterministic cases with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::with_cases(256)) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ($config).cases;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assertion macro mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u32..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn select_and_vec_strategies() {
        let mut rng = TestRng::deterministic("select");
        let s = prop::sample::select(vec!['a', 'b']);
        for _ in 0..100 {
            assert!(matches!(s.sample(&mut rng), 'a' | 'b'));
        }
        let v = prop::collection::vec(0u32..5, 1..6);
        for _ in 0..100 {
            let xs = v.sample(&mut rng);
            assert!((1..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #[test]
        fn macro_draws_arguments(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
