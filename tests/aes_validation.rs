//! AES-FULL — validation of the generated AES-128 VHDL1 workload against the
//! Rust reference model through the SOS simulator (the role ModelSim plays in
//! the paper), plus analysis smoke tests on the larger components.

use vhdl_infoflow::aes::vhdl::{add_round_key_vhdl, aes128_vhdl, sub_bytes_vhdl};
use vhdl_infoflow::aes::{encrypt_block, hex_block, SBOX};
use vhdl_infoflow::infoflow::{analyze_with, AnalysisOptions};
use vhdl_infoflow::sim::Simulator;
use vhdl_infoflow::syntax::frontend;

fn simulate_aes(key: &[u8; 16], pt: &[u8; 16]) -> Vec<u8> {
    let design = frontend(&aes128_vhdl()).expect("AES-128 workload elaborates");
    let mut sim = Simulator::new(&design).unwrap();
    sim.run_until_quiescent(50).unwrap();
    for i in 0..16 {
        sim.drive_input_unsigned(&format!("pt_{i}"), pt[i] as u128)
            .unwrap();
        sim.drive_input_unsigned(&format!("key_{i}"), key[i] as u128)
            .unwrap();
    }
    sim.run_until_quiescent(50).unwrap();
    (0..16)
        .map(|i| {
            sim.signal(&format!("ct_{i}"))
                .unwrap()
                .to_unsigned()
                .unwrap() as u8
        })
        .collect()
}

#[test]
fn full_aes128_vhdl_matches_reference_on_fips_and_random_blocks() {
    let key = hex_block("000102030405060708090a0b0c0d0e0f");
    let pt = hex_block("00112233445566778899aabbccddeeff");
    assert_eq!(simulate_aes(&key, &pt), encrypt_block(&key, &pt).to_vec());

    // A couple of additional deterministic pseudo-random blocks.
    let mut key2 = [0u8; 16];
    let mut pt2 = [0u8; 16];
    for i in 0..16 {
        key2[i] = (i as u8).wrapping_mul(73).wrapping_add(19);
        pt2[i] = (i as u8).wrapping_mul(151).wrapping_add(7);
    }
    assert_eq!(
        simulate_aes(&key2, &pt2),
        encrypt_block(&key2, &pt2).to_vec()
    );
}

#[test]
fn sub_bytes_component_is_exhaustively_correct_on_one_byte() {
    let design = frontend(&sub_bytes_vhdl(1)).unwrap();
    let mut sim = Simulator::new(&design).unwrap();
    sim.run_until_quiescent(20).unwrap();
    for probe in (0u16..256).step_by(17) {
        sim.drive_input_unsigned("a_0", probe as u128).unwrap();
        sim.run_until_quiescent(20).unwrap();
        assert_eq!(
            sim.signal("b_0").unwrap().to_unsigned().unwrap() as u8,
            SBOX[probe as usize],
            "S-box mismatch at {probe:#x}"
        );
    }
}

#[test]
fn add_round_key_analysis_keeps_byte_lanes_separate() {
    let design = frontend(&add_round_key_vhdl(16)).unwrap();
    let result = analyze_with(&design, &AnalysisOptions::base());
    let ours = result.base_flow_graph();
    let kemmerer = result.kemmerer_flow_graph();
    // Each output byte depends only on its own input and key byte.
    for i in 0..16 {
        for j in 0..16 {
            let expected = i == j;
            assert_eq!(
                ours.has_edge(&format!("a_{i}"), &format!("b_{j}")),
                expected,
                "lane separation violated for a_{i} -> b_{j}"
            );
            assert_eq!(
                ours.has_edge(&format!("k_{i}"), &format!("b_{j}")),
                expected
            );
        }
    }
    // Kemmerer's method mixes every lane through the shared temporary.
    assert!(kemmerer.has_edge("a_0", "b_15"));
    assert!(kemmerer.edge_count() > ours.edge_count());
}

#[test]
fn full_aes_workload_statistics_match_the_paper_setting() {
    // The paper preprocesses by unrolling loops and propagating constants;
    // the generated cipher is fully unrolled and sizable.
    let design = frontend(&aes128_vhdl()).unwrap();
    assert_eq!(design.processes.len(), 1);
    assert!(
        design.max_label() > 50_000,
        "fully unrolled AES has tens of thousands of blocks"
    );
    assert_eq!(design.input_signals().len(), 32);
    assert_eq!(design.output_signals().len(), 16);
}
