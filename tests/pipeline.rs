//! Cross-crate end-to-end tests: frontend → Reaching Definitions →
//! Information Flow → policy audit / DOT export, plus property-based tests on
//! the core invariants.

use proptest::prelude::*;
use vhdl_infoflow::dataflow::{RdOptions, ReachingDefinitions};
use vhdl_infoflow::infoflow::{analyze, analyze_with, audit, AnalysisOptions, Policy};
use vhdl_infoflow::syntax::{frontend, parse, pretty_program};

const CRYPTO: &str = "
    entity unit is
      port(
        secret : in std_logic_vector(7 downto 0);
        public : in std_logic_vector(7 downto 0);
        output : out std_logic_vector(7 downto 0)
      );
    end unit;
    architecture rtl of unit is
      signal stage : std_logic_vector(7 downto 0);
    begin
      first : process
        variable tmp : std_logic_vector(7 downto 0);
      begin
        tmp := public;
        stage <= tmp;
        wait on public;
      end process first;
      second : process
      begin
        output <= stage;
        wait on stage;
      end process second;
    end rtl;";

#[test]
fn end_to_end_no_flow_from_unused_secret() {
    let design = frontend(CRYPTO).unwrap();
    let result = analyze(&design);
    let graph = result.flow_graph().merge_io_nodes();
    assert!(graph.has_edge("public", "output"));
    assert!(!graph.has_edge("secret", "output"), "secret is never read");
    let policy = Policy::new()
        .with_level("secret", 1)
        .with_level("output", 0);
    assert!(audit(&graph, &policy).is_secure());
}

#[test]
fn dot_export_is_well_formed() {
    let design = frontend(CRYPTO).unwrap();
    let dot = analyze(&design).flow_graph().to_dot("unit");
    assert!(dot.starts_with("digraph \"unit\""));
    assert!(dot.trim_end().ends_with('}'));
    assert!(dot.contains("->"));
}

#[test]
fn rd_and_analysis_are_deterministic() {
    let design = frontend(CRYPTO).unwrap();
    let a = analyze(&design);
    let b = analyze(&design);
    assert_eq!(a.global, b.global);
    assert_eq!(a.flow_graph(), b.flow_graph());
    let rd1 = ReachingDefinitions::compute(&design, &RdOptions::default());
    let rd2 = ReachingDefinitions::compute(&design, &RdOptions::default());
    assert_eq!(rd1, rd2);
}

/// Strategy generating small straight-line variable programs over a, b, c, d.
fn arb_program() -> impl Strategy<Value = String> {
    let vars = ["a", "b", "c", "d"];
    let stmt =
        (0usize..4, 0usize..4).prop_map(move |(t, s)| format!("{} := {};", vars[t], vars[s]));
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        format!(
            "entity e is port(clk : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic; variable b : std_logic;
                 variable c : std_logic; variable d : std_logic;
               begin
                 {}
               end process p;
             end rtl;",
            stmts.join(" ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness relative to the baseline: every flow found by the RD-based
    /// analysis is also found by Kemmerer's transitive closure.
    #[test]
    fn rd_based_graph_is_subgraph_of_kemmerer(src in arb_program()) {
        let design = frontend(&src).unwrap();
        let opts = AnalysisOptions::sequential_illustration().to_builder().improved(false).build();
        let result = analyze_with(&design, &opts);
        let ours = result.base_flow_graph();
        let kemmerer = result.kemmerer_flow_graph();
        for (f, t) in ours.edges() {
            prop_assert!(kemmerer.has_edge_nodes(f, t));
        }
    }

    /// The pretty printer and the parser are inverses on generated programs.
    #[test]
    fn parse_pretty_roundtrip(src in arb_program()) {
        let program = parse(&src).unwrap();
        let printed = pretty_program(&program);
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(program, reparsed);
    }

    /// The Kemmerer baseline always produces a transitively closed graph.
    #[test]
    fn kemmerer_graph_is_transitive(src in arb_program()) {
        let design = frontend(&src).unwrap();
        let g = vhdl_infoflow::infoflow::kemmerer_graph(&design);
        prop_assert!(g.is_transitive());
    }
}
