//! SOLVER — the analyses implemented through the ALFP/Datalog solver (the
//! Succinct Solver substrate) must compute exactly the same graphs as the
//! native Rust implementation.

use bench::workloads::{design_of, program_a_src, temp_reuse_src};
use vhdl_infoflow::aes::vhdl::shift_rows_vhdl;
use vhdl_infoflow::alfp::{Program, Term};
use vhdl_infoflow::infoflow::alfp_encoding::{solve_closure, solve_kemmerer};
use vhdl_infoflow::infoflow::{analyze_with, AnalysisOptions};
use vhdl_infoflow::syntax::frontend;

fn assert_same_graph(
    native: &vhdl_infoflow::infoflow::FlowGraph,
    alfp: &vhdl_infoflow::infoflow::FlowGraph,
) {
    for (f, t) in native.edges() {
        assert!(
            alfp.has_edge_nodes(f, t),
            "edge {f} -> {t} missing from the ALFP model"
        );
    }
    for (f, t) in alfp.edges() {
        assert!(
            native.has_edge_nodes(f, t),
            "edge {f} -> {t} only in the ALFP model"
        );
    }
}

#[test]
fn closure_encoding_agrees_on_the_evaluation_workloads() {
    for src in [program_a_src(), temp_reuse_src(6), shift_rows_vhdl()] {
        let design = design_of(&src);
        let result = analyze_with(&design, &AnalysisOptions::base());
        let native = result.base_flow_graph();
        let alfp = solve_closure(&result).expect("generated clauses are safe and stratified");
        assert_same_graph(&native, &alfp);
    }
}

#[test]
fn kemmerer_encoding_agrees_with_the_native_baseline() {
    let design = frontend(&shift_rows_vhdl()).unwrap();
    let result = analyze_with(&design, &AnalysisOptions::base());
    let native = result.kemmerer_flow_graph();
    let alfp = solve_kemmerer(&result).unwrap();
    for (f, t) in native.edges() {
        assert!(
            alfp.has_edge_nodes(f, t),
            "edge {f} -> {t} missing from ALFP Kemmerer"
        );
    }
}

#[test]
fn the_solver_substrate_computes_least_models() {
    // Sanity check of the solver on a classic reachability program, the way
    // the analyses use it.
    let mut p = Program::new();
    for (a, b) in [("key", "mix"), ("mix", "ct"), ("pt", "mix")] {
        p.fact("edge", vec![Term::cst(a), Term::cst(b)]);
    }
    p.rule("reach", vec![Term::var("X"), Term::var("Y")])
        .pos("edge", vec![Term::var("X"), Term::var("Y")])
        .build();
    p.rule("reach", vec![Term::var("X"), Term::var("Z")])
        .pos("reach", vec![Term::var("X"), Term::var("Y")])
        .pos("edge", vec![Term::var("Y"), Term::var("Z")])
        .build();
    let m = p.solve().unwrap();
    assert!(m.contains("reach", &["key", "ct"]));
    assert!(!m.contains("reach", &["ct", "key"]));
}
