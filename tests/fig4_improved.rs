//! FIG4 — the improved analysis of Section 5.3 on program (b): incoming and
//! outgoing nodes distinguish the initial value of a resource from the values
//! it later holds.

use bench::workloads::{design_of, program_b_src, sequential_variables_src};
use vhdl_infoflow::infoflow::{analyze_with, AnalysisOptions, Node};

#[test]
fn figure_4b_initial_value_of_b_is_not_observable_from_c() {
    let design = design_of(&program_b_src());
    let result = analyze_with(&design, &AnalysisOptions::sequential_illustration());
    let g = result.flow_graph();
    // The initial value of a flows into b and c.
    assert!(g
        .reachable_from(&Node::incoming("a"))
        .contains(&Node::res("b")));
    assert!(g
        .reachable_from(&Node::incoming("a"))
        .contains(&Node::res("c")));
    // The initial value of b is overwritten before any use: it reaches nothing.
    assert!(!g
        .reachable_from(&Node::incoming("b"))
        .contains(&Node::res("c")));
    assert!(!g
        .reachable_from(&Node::incoming("b"))
        .contains(&Node::outgoing("c")));
    // The outgoing value of c depends on b's (new) value and a's initial one.
    assert!(g.has_edge_nodes(&Node::res("b"), &Node::outgoing("c")));
    assert!(g
        .reachable_from(&Node::incoming("a"))
        .contains(&Node::outgoing("c")));
}

#[test]
fn base_analysis_cannot_make_the_initial_value_distinction() {
    // Without the improvement, the graph only has plain nodes: reading b's
    // "initial value or not" is not expressible, which is exactly what the
    // improvement adds.
    let design = design_of(&program_b_src());
    let result = analyze_with(
        &design,
        &AnalysisOptions::sequential_illustration()
            .to_builder()
            .improved(false)
            .build(),
    );
    let g = result.flow_graph();
    assert!(g.nodes().all(|n| n.is_plain()));
    assert!(g.has_edge("a", "c"));
}

#[test]
fn typical_security_type_system_counterexample_is_accepted() {
    // Section 7 / Open Challenge F: a program that first overwrites a public
    // variable with secret data and then overwrites it again with public data
    // before output.  Type systems reject it; the RD-based analysis sees that
    // the secret is dead.
    let design = design_of(&sequential_variables_src("b := a; b := c; a := b;"));
    let result = analyze_with(&design, &AnalysisOptions::sequential_illustration());
    let g = result.flow_graph();
    // a's final value depends on c, not on a's own initial (secret) value:
    // there is no direct flow edge from a's incoming value to a (or to a's
    // outgoing value), because the first definition of b is dead.
    assert!(g.has_edge("c", "a"));
    assert!(!g.has_edge_nodes(&Node::incoming("a"), &Node::res("a")));
    assert!(!g.has_edge_nodes(&Node::incoming("a"), &Node::outgoing("a")));
    // The flow that does exist from a's initial value is the dead store into b.
    assert!(g.has_edge_nodes(&Node::incoming("a"), &Node::res("b")));
}
