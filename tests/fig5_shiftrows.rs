//! FIG5 — the headline evaluation result: on the AES ShiftRows function the
//! RD-based analysis separates the three shifted rows, while Kemmerer's
//! method conflates them through the shared temporary variables.

use bench::fig5::{row_of, shift_rows_graphs, ShiftRowsGraphs};

#[test]
fn our_analysis_separates_the_three_rows_into_rotation_cycles() {
    let graphs = shift_rows_graphs();
    assert_eq!(
        graphs.ours.node_count(),
        12,
        "12 shifted-row bytes as in Figure 5"
    );
    assert_eq!(graphs.ours.edge_count(), 12, "one rotation edge per byte");
    assert!(ShiftRowsGraphs::rows_are_separated(&graphs.ours));
    // Every byte has exactly one successor: the byte it is rotated into.
    for n in graphs.ours.nodes() {
        assert_eq!(
            graphs.ours.successors(n).len(),
            1,
            "byte {n} must have one successor"
        );
        assert_eq!(graphs.ours.predecessors(n).len(), 1);
    }
    // Row r is rotated by r positions: a_r_c receives from a_r_{(c+r) mod 4}.
    for row in 1..=3usize {
        for col in 0..4usize {
            let from = format!("a_{row}_{}", (col + row) % 4);
            let to = format!("a_{row}_{col}");
            assert!(
                graphs.ours.has_edge(&from, &to),
                "missing rotation edge {from} -> {to}"
            );
        }
    }
}

#[test]
fn kemmerer_conflates_the_rows_through_shared_temporaries() {
    let graphs = shift_rows_graphs();
    assert_eq!(graphs.kemmerer.node_count(), 12);
    assert!(!ShiftRowsGraphs::rows_are_separated(&graphs.kemmerer));
    assert!(ShiftRowsGraphs::cross_row_edges(&graphs.kemmerer) > 0);
    assert!(
        graphs.kemmerer.edge_count() >= 3 * graphs.ours.edge_count(),
        "Kemmerer reports many times more edges ({} vs {})",
        graphs.kemmerer.edge_count(),
        graphs.ours.edge_count()
    );
}

#[test]
fn our_graph_is_a_subgraph_of_kemmerers() {
    let graphs = shift_rows_graphs();
    for (f, t) in graphs.ours.edges() {
        assert!(
            graphs.kemmerer.has_edge_nodes(f, t),
            "soundness on the merged view: {f} -> {t} missing from Kemmerer's graph"
        );
    }
    assert!(graphs.kemmerer_full_edges > graphs.ours_full_edges);
}

#[test]
fn row_zero_passes_through_unchanged() {
    // Row 0 is not shifted; in the unrestricted merged graph each a_0_c maps
    // straight to itself (dropped as a self loop), so no row-0 node appears
    // with a cross-column edge.
    let graphs = shift_rows_graphs();
    for n in graphs.ours.nodes() {
        assert_ne!(
            row_of(n.name()),
            Some(0),
            "row 0 is excluded from the Figure 5 view"
        );
    }
}
