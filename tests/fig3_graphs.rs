//! FIG3 — the non-transitive information-flow graphs of Figure 3 and the
//! comparison with Kemmerer's method (Section 5.2).

use bench::workloads::{design_of, program_a_src, program_b_src};
use vhdl_infoflow::infoflow::{analyze_with, AnalysisOptions};

fn base_sequential() -> AnalysisOptions {
    AnalysisOptions::sequential_illustration()
        .to_builder()
        .improved(false)
        .build()
}

#[test]
fn figure_3a_program_a_graph_is_exactly_the_two_true_flows() {
    let design = design_of(&program_a_src());
    let result = analyze_with(&design, &base_sequential());
    let g = result.base_flow_graph();
    assert!(g.has_edge("b", "c"));
    assert!(g.has_edge("a", "b"));
    assert!(!g.has_edge("a", "c"), "Figure 3(a) has no a -> c edge");
    assert_eq!(g.edge_count(), 2);
    assert!(!g.is_transitive(), "the result graph is non-transitive");
}

#[test]
fn figure_3b_program_b_graph_contains_the_real_transitive_flow() {
    let design = design_of(&program_b_src());
    let result = analyze_with(&design, &base_sequential());
    let g = result.base_flow_graph();
    assert!(g.has_edge("a", "b"));
    assert!(g.has_edge("b", "c"));
    assert!(g.has_edge("a", "c"), "Figure 3(b) includes a -> c");
    assert_eq!(g.edge_count(), 3);
}

#[test]
fn kemmerer_cannot_distinguish_the_two_programs() {
    let a = design_of(&program_a_src());
    let b = design_of(&program_b_src());
    let ka = analyze_with(&a, &base_sequential()).kemmerer_flow_graph();
    let kb = analyze_with(&b, &base_sequential()).kemmerer_flow_graph();
    // Kemmerer's transitive closure yields the same (over-approximated) graph
    // for both statement orders.
    assert!(ka.has_edge("a", "c") && kb.has_edge("a", "c"));
    assert_eq!(ka.edge_count(), kb.edge_count());
    assert!(ka.is_transitive() && kb.is_transitive());
}

#[test]
fn rd_based_graph_is_always_a_subgraph_of_kemmerers() {
    for src in [program_a_src(), program_b_src()] {
        let design = design_of(&src);
        let result = analyze_with(&design, &base_sequential());
        let ours = result.base_flow_graph();
        let kemmerer = result.kemmerer_flow_graph();
        for (f, t) in ours.edges() {
            assert!(
                kemmerer.has_edge_nodes(f, t),
                "soundness: {f} -> {t} missing in Kemmerer"
            );
        }
    }
}
